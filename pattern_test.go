package ringrpq

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func orgDB(t *testing.T, shards int) *DB {
	t.Helper()
	b := NewBuilderWithConfig(BuilderConfig{Shards: shards})
	b.Add("ana", "manages", "bo")
	b.Add("bo", "manages", "cleo")
	b.Add("bo", "manages", "dmitri")
	b.Add("ana", "manages", "erin")
	b.Add("cleo", "assigned", "apollo")
	b.Add("dmitri", "assigned", "zephyr")
	b.Add("erin", "assigned", "apollo")
	b.Add("apollo", "status", "active")
	b.Add("zephyr", "status", "archived")
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQueryPatternEndToEnd(t *testing.T) {
	db := orgDB(t, 0)
	vars, rows, err := db.Select(
		"SELECT ?m ?proj WHERE { ?m manages+ ?e . ?e assigned ?proj . ?proj status active }")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vars, []string{"m", "proj"}) {
		t.Fatalf("vars = %v", vars)
	}
	SortRows(rows)
	want := [][]string{{"ana", "apollo"}, {"bo", "apollo"}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}

	// Unprojected bindings include every variable.
	bs, err := db.QueryPattern("?e assigned ?p . ?p status active")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("bindings: %v", bs)
	}
	for _, b := range bs {
		if b["p"] != "apollo" || (b["e"] != "cleo" && b["e"] != "erin") {
			t.Fatalf("binding %v", b)
		}
	}
}

func TestQueryPatternOptionsAndErrors(t *testing.T) {
	db := orgDB(t, 0)
	if err := ParseQuery("?x manages ?y"); err != nil {
		t.Fatal(err)
	}
	if err := ParseQuery("?x ((bad ?y"); err == nil {
		t.Fatal("bad pattern accepted")
	}
	if _, err := db.QueryPattern("?x ((bad ?y"); err == nil {
		t.Fatal("bad pattern accepted by QueryPattern")
	}

	bs, err := db.QueryPattern("?m manages* ?e", WithLimit(3))
	if err != nil || len(bs) != 3 {
		t.Fatalf("limit: %d bindings, err=%v", len(bs), err)
	}

	// Select's limit caps distinct projected rows, not raw bindings.
	_, rows, err := db.Select("SELECT ?p WHERE { ?e assigned ?p }", WithLimit(1))
	if err != nil || len(rows) != 1 {
		t.Fatalf("select limit: %v err=%v", rows, err)
	}

	err = db.QueryPatternFunc("?m manages+ ?e . ?e manages* ?z", func(Binding) bool {
		time.Sleep(time.Millisecond)
		return true
	}, WithTimeout(time.Nanosecond))
	if !errors.Is(err, ErrTimeout) && err != nil {
		// A nanosecond deadline may fire before any row; both ErrTimeout
		// and a clean empty result would betray a broken propagation,
		// so only ErrTimeout or nil-with-zero-rows are acceptable; the
		// sleep above makes ErrTimeout overwhelmingly likely.
		t.Fatalf("timeout: %v", err)
	}
}

func TestQueryPatternSharded(t *testing.T) {
	single := orgDB(t, 0)
	db := orgDB(t, 4)
	if db.Shards() < 2 {
		t.Skip("graph too small to shard")
	}
	// Single-predicate patterns route to one shard on any layout.
	src := "?m manages+ ?e . ?m manages ?e"
	w1, r1, err := single.Select(src)
	if err != nil {
		t.Fatal(err)
	}
	w2, r2, err := db.Select(src)
	if err != nil {
		// The hash partitioner may co-locate everything; only a
		// genuinely cross-shard routing may error, and then with the
		// typed error.
		if !errors.Is(err, ErrCrossShard) {
			t.Fatalf("sharded: %v", err)
		}
		t.Fatal("single-predicate pattern must never be cross-shard")
	}
	SortRows(r1)
	SortRows(r2)
	if !reflect.DeepEqual(w1, w2) || !reflect.DeepEqual(r1, r2) {
		t.Fatalf("sharded mismatch: %v/%v vs %v/%v", w1, r1, w2, r2)
	}

	// A multi-predicate pattern either routes (co-located) or fails
	// with the typed cross-shard error — never a wrong answer.
	_, r3, err := db.Select("SELECT ?m WHERE { ?m manages ?e . ?e assigned ?p }")
	if err != nil {
		if !errors.Is(err, ErrCrossShard) {
			t.Fatalf("unexpected error: %v", err)
		}
	} else {
		_, r4, _ := single.Select("SELECT ?m WHERE { ?m manages ?e . ?e assigned ?p }")
		SortRows(r3)
		SortRows(r4)
		if !reflect.DeepEqual(r3, r4) {
			t.Fatalf("sharded rows %v, single %v", r3, r4)
		}
	}
}

func TestQueryPatternAfterSaveLoadAndClone(t *testing.T) {
	db := orgDB(t, 0)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*DB{loaded, db.Clone()} {
		_, rows, err := d.Select("SELECT ?e WHERE { ana manages+ ?e . ?e assigned apollo }")
		if err != nil {
			t.Fatal(err)
		}
		SortRows(rows)
		if !reflect.DeepEqual(rows, [][]string{{"cleo"}, {"erin"}}) {
			t.Fatalf("rows = %v", rows)
		}
	}
}

func TestServiceSelectEndToEnd(t *testing.T) {
	db := orgDB(t, 0)
	svc := NewService(db, ServiceConfig{Workers: 2})
	defer svc.Close()
	ctx := context.Background()

	src := "SELECT ?m ?proj WHERE { ?m manages+ ?e . ?e assigned ?proj . ?proj status active }"
	vars, rows, err := svc.Select(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	got := append([][]string{}, rows...)
	SortRows(got)
	want := [][]string{{"ana", "apollo"}, {"bo", "apollo"}}
	if !reflect.DeepEqual(vars, []string{"m", "proj"}) || !reflect.DeepEqual(got, want) {
		t.Fatalf("vars=%v rows=%v", vars, rows)
	}

	// The HTTP handler answers the same mixed BGP+RPQ query on /select.
	h := svc.Handler(HandlerConfig{DefaultLimit: 1000})
	req := httptest.NewRequest("POST", "/select", strings.NewReader(
		`{"query": "SELECT ?m ?proj WHERE { ?m manages+ ?e . ?e assigned ?proj . ?proj status active }"}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var out struct {
		Vars  []string   `json:"vars"`
		Rows  [][]string `json:"rows"`
		Count int        `json:"count"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	SortRows(out.Rows)
	if !reflect.DeepEqual(out.Vars, []string{"m", "proj"}) || !reflect.DeepEqual(out.Rows, want) || out.Count != 2 {
		t.Fatalf("http response: %+v", out)
	}

	// Stats reflect the pattern cache.
	if st := svc.Stats(); st.PatternMisses == 0 {
		t.Fatalf("pattern cache counters: %+v", st)
	}
}

func TestExplainPattern(t *testing.T) {
	db := orgDB(t, 0)
	order, steps, err := db.ExplainPattern("?m manages ?e . ?e assigned+ ?p")
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || steps != 1 {
		t.Fatalf("order=%v steps=%d", order, steps)
	}
}
