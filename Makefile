# Tier-1 verification is `make` (or `make ci`): build, vet, test.
GO ?= go
FUZZTIME ?= 20s

.PHONY: all ci build vet test race bench fuzz clean

all: ci

ci: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency surface: the service package,
# the sharded engine's cooperative fan-out (differential tests), and the
# root-package stress tests.
race:
	$(GO) test -race ./internal/service/ ./internal/core/ .
	$(GO) test -race -run 'Stress|Clone|Sharded' .

# Short bounded fuzz runs over the expression parser and the database
# loader (go native fuzzing; one target per invocation). The growing
# corpus lives in the Go build cache, so repeated runs keep digging.
fuzz:
	$(GO) test -run NONE -fuzz FuzzParseExpr -fuzztime $(FUZZTIME) ./internal/pathexpr
	$(GO) test -run NONE -fuzz FuzzLoadDB -fuzztime $(FUZZTIME) .

# Service throughput scaling and cache-hit benchmarks.
bench:
	$(GO) test -run NONE -bench 'Service' -benchtime 2s .

clean:
	$(GO) clean ./...
