# Tier-1 verification is `make` (or `make ci`): build, vet, test, plus a
# single-iteration smoke pass over the perf-critical micro-benchmarks.
GO ?= go
FUZZTIME ?= 20s

.PHONY: all ci build vet test race crash bench bench-short bench-json fuzz lint lint-metrics clean

all: ci

ci: build vet test crash bench-short lint lint-metrics

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency surface: the service package,
# the sharded engine's cooperative fan-out (differential tests), the
# graph-pattern subsystem (parallel differential harness over shared
# selectivity caches), the live-update overlay (snapshot swap vs
# concurrent readers/writers), the standing-subscription registry, and
# the root-package stress tests (including the subscription
# close-under-update stress and the standing differential harness),
# plus the wavelet descent kernels the noalloc annotations cover.
race:
	$(GO) test -race ./internal/service/ ./internal/core/ ./internal/ltj/ ./internal/query/ ./internal/overlay/ ./internal/standing/ ./internal/wal/ ./internal/wavelet/ .
	$(GO) test -race -run 'Stress|Clone|Sharded|Update|Subscribe|Standing|Group|Compiled|Durable|Panic|WAL' .

# Crash-recovery property pass: the fault-injection harness kills the
# process (write-budget exhaustion + random crash-point tears of every
# unsynced tail) at 100+ points across the update/compaction workload
# and verifies zero acked-update loss and oracle equality, plus the
# torn-tail, compaction-stage and kill+reboot end-to-end tests.
crash:
	$(GO) test -count=1 -run 'Durable|WAL' ./internal/wal/ .

# Short bounded fuzz runs over the expression parser, the graph-pattern
# parser and the database loader (go native fuzzing; one target per
# invocation). The growing corpus lives in the Go build cache, so
# repeated runs keep digging.
fuzz:
	$(GO) test -run NONE -fuzz FuzzParseExpr -fuzztime $(FUZZTIME) ./internal/pathexpr
	$(GO) test -run NONE -fuzz FuzzParseQuery -fuzztime $(FUZZTIME) ./internal/query
	$(GO) test -run NONE -fuzz FuzzDecodeNDJSONUpdates -fuzztime $(FUZZTIME) ./internal/service
	$(GO) test -run NONE -fuzz FuzzDecodeSubscribeRequest -fuzztime $(FUZZTIME) ./internal/service
	$(GO) test -run NONE -fuzz FuzzLoadDB -fuzztime $(FUZZTIME) .
	$(GO) test -run NONE -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/wal

# Service throughput scaling and cache-hit benchmarks.
bench:
	$(GO) test -run NONE -bench 'Service' -benchtime 2s .

# One-iteration smoke run of the hot-path micro-benchmarks (broadword
# select, multi-range wavelet descent, batched vs unbatched BFS): makes
# sure the benchmark code keeps compiling and running under ci.
bench-short:
	$(GO) test -run NONE -bench 'SelectInWord|TraverseMany|BatchedBFS' -benchtime 1x \
		./internal/bitvec/ ./internal/wavelet/ ./internal/core/
	$(GO) test -run NONE -bench CompiledStepperSteadyState -benchtime 100x ./internal/core/

# Machine-readable perf trajectory: the batched-vs-unbatched ablation
# over the standard Table 1 workload (BENCH_PR3.json), the
# graph-pattern workload — BGP-only vs mixed BGP+RPQ — on the
# selectivity-planned executor (BENCH_PR4.json), and the live-update
# workload — read latency vs overlay fill, interleaved read/write, and
# the compaction swap pause (BENCH_PR5.json), and the standing-
# subscription workload — incremental delta maintenance vs full
# re-evaluation over the same update stream (BENCH_PR6.json), and the
# compilation-tier workload — compiled steppers vs the generic
# interpreted fallback, plus the service pool with and without
# cross-query traversal grouping (BENCH_PR7.json).
bench-json:
	$(GO) run ./cmd/rpqbench -json BENCH_PR3.json
	$(GO) run ./cmd/rpqbench -nodes 8000 -edges 40000 -preds 40 -queries 120 \
		-limit 10000 -patterns BENCH_PR4.json
	$(GO) run ./cmd/rpqbench -nodes 10000 -edges 50000 -preds 40 -queries 400 \
		-timeout 5s -limit 100000 -updates BENCH_PR5.json
	$(GO) run ./cmd/rpqbench -nodes 4000 -edges 20000 -preds 30 -queries 200 \
		-timeout 5s -limit 100000 -subs BENCH_PR6.json
	$(GO) run ./cmd/rpqbench -compiled BENCH_PR7.json

# Repo-invariant static analysis (internal/lint + cmd/rpqlint):
# ctxfirst, spanend, deadlineloop, locksend, walerr and noalloc over
# the whole tree. Zero dependencies; fails on any unsuppressed
# violation. See README "Static analysis" for the suppression syntax.
lint:
	$(GO) run ./cmd/rpqlint ./...

# Metrics/stats coverage lint: every field of the service Stats
# snapshot (including the standing/WAL/latency blocks) must have a
# /metrics series and render in Stats.String(). The reflection-based
# tests fail when a counter is added without its exposition.
lint-metrics:
	$(GO) test -count=1 -run 'TestMetricsCoverage|TestStatsStringCoversAllFields' ./internal/service/

clean:
	$(GO) clean ./...
