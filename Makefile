# Tier-1 verification is `make` (or `make ci`): build, vet, test.
GO ?= go

.PHONY: all ci build vet test race bench clean

all: ci

ci: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency surface: the service package
# and the root-package stress tests.
race:
	$(GO) test -race ./internal/service/ .
	$(GO) test -race -run 'Stress|Clone' .

# Service throughput scaling and cache-hit benchmarks.
bench:
	$(GO) test -run NONE -bench 'Service' -benchtime 2s .

clean:
	$(GO) clean ./...
