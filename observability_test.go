package ringrpq

// End-to-end observability tests over a real index: the profile span
// tree produced by the engine (traverse + per-level spans with frontier
// and wavelet-visit attrs), the /metrics exposition through the public
// handler, and the readiness probe's reaction to a wedged write-ahead
// log.

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"ringrpq/internal/obs"
	"ringrpq/internal/service"
	"ringrpq/internal/wal"
)

func obsTestDB(t *testing.T) *DB {
	t.Helper()
	b := NewBuilder()
	b.Add("a", "p", "b")
	b.Add("b", "p", "c")
	b.Add("c", "p", "d")
	b.Add("a", "q", "d")
	db, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return db
}

// TestProfileEngineSpans: a profiled closure query over a real ring
// must surface the engine's traversal telemetry — a traverse span with
// product-graph attrs nesting per-BFS-level spans with frontier sizes
// and wavelet-node visits — and the span clock must be consistent
// (children within parents, siblings summing to no more than the root).
func TestProfileEngineSpans(t *testing.T) {
	db := obsTestDB(t)
	svc := NewService(db, ServiceConfig{Workers: 1, ResultCacheEntries: -1})
	defer svc.Close()
	h := svc.Handler(HandlerConfig{})

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/query",
		strings.NewReader(`{"subject":"a","expr":"p+","object":"?o","profile":true}`))
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("POST /query = %d: %s", rec.Code, rec.Body.String())
	}
	var out service.ResultJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Count != 3 {
		t.Fatalf("a -p+-> ?o returned %d solutions, want 3", out.Count)
	}
	if out.Profile == nil || len(out.Profile.Spans) != 1 {
		t.Fatalf("no single-root profile: %+v", out.Profile)
	}
	root := out.Profile.Spans[0]
	if root.Kind != "request" {
		t.Fatalf("root span kind %q", root.Kind)
	}

	var traverse *obs.SpanNode
	var find func(n *obs.SpanNode)
	find = func(n *obs.SpanNode) {
		if n.Kind == "traverse" {
			traverse = n
		}
		for _, c := range n.Children {
			find(c)
		}
	}
	find(root)
	if traverse == nil {
		t.Fatalf("no traverse span in profile: %s", rec.Body.String())
	}
	if traverse.Attrs["results"] != 3 {
		t.Errorf("traverse results attr = %d, want 3", traverse.Attrs["results"])
	}
	if traverse.Attrs["wavelet_visits"] <= 0 || traverse.Attrs["product_nodes"] <= 0 {
		t.Errorf("traverse missing engine attrs: %v", traverse.Attrs)
	}

	levels := 0
	for _, c := range traverse.Children {
		if c.Kind != "level" {
			continue
		}
		levels++
		if c.Attrs["frontier"] <= 0 {
			t.Errorf("level span without frontier attr: %v", c.Attrs)
		}
		if c.StartUS < traverse.StartUS-1 ||
			c.StartUS+c.DurationUS > traverse.StartUS+traverse.DurationUS+1 {
			t.Errorf("level span outside traverse window")
		}
	}
	// a -p+-> {b,c,d} takes three BFS levels.
	if levels < 2 {
		t.Errorf("closure traversal produced %d level spans, want >= 2", levels)
	}

	var sum float64
	for _, c := range root.Children {
		sum += c.DurationUS
	}
	if sum > root.DurationUS*1.01+50 {
		t.Errorf("children (%.0fus) exceed root (%.0fus)", sum, root.DurationUS)
	}
}

// TestMetricsEndToEnd scrapes /metrics through the public handler after
// real traffic and spot-checks engine-backed series.
func TestMetricsEndToEnd(t *testing.T) {
	db := obsTestDB(t)
	svc := NewService(db, ServiceConfig{Workers: 2})
	defer svc.Close()
	h := svc.Handler(HandlerConfig{})

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/query",
			strings.NewReader(`{"subject":"a","expr":"p+","object":"?o"}`)))
		if rec.Code != 200 {
			t.Fatalf("query %d = %d", i, rec.Code)
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"ringrpq_requests 3",
		"ringrpq_completed 1", // first query evaluates, rest hit the cache
		"ringrpq_hits 2",
		"ringrpq_request_duration_seconds_count 1",
		"ringrpq_eval_duration_seconds_count 1",
		"ringrpq_build_info{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestReadyzWedgedWAL: readiness must fail once the write-ahead log
// wedges (fsync failures make appends refuse), with the wedge reason
// in the response body — while liveness stays green.
func TestReadyzWedgedWAL(t *testing.T) {
	mem := wal.NewMemFS()
	ff := wal.NewFaultFS(mem)
	db, err := openDurable(WALConfig{Dir: "/obs-wedge", Fsync: "always"}, func() (*DB, error) {
		b := NewBuilder()
		b.Add("a", "p", "b")
		return b.Build()
	}, ff)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.CloseWAL()
	db.SetCompactionThreshold(-1)

	svc := NewService(db, ServiceConfig{Workers: 1})
	defer svc.Close()
	h := svc.Handler(HandlerConfig{})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("/readyz healthy = %d: %s", rec.Code, rec.Body.String())
	}

	ff.FailSyncs(true)
	if _, err := db.Apply([]Triple{{"a", "p", "c"}}, nil); err == nil {
		t.Fatal("apply with failing fsync unexpectedly succeeded")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("/readyz wedged = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "wedged") {
		t.Errorf("/readyz body lacks wedge reason: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("/healthz wedged = %d, want 200", rec.Code)
	}

	ws := db.WALStats()
	if !ws.Wedged || ws.WedgeReason == "" {
		t.Errorf("WALStats not reporting wedge: %+v", ws)
	}
}
