package ringrpq_test

import (
	"context"
	"fmt"
	"sort"

	"ringrpq"
)

// ExampleService shows the concurrent query front-end: a worker pool
// over the shared immutable index with compiled-query and result
// caches. The same metro-line graph as the package quickstart.
func ExampleService() {
	b := ringrpq.NewBuilder()
	b.Add("Baquedano", "l1", "UCh")
	b.Add("UCh", "l1", "LosHeroes")
	b.Add("Baquedano", "l5", "BellasArtes")
	db, err := b.Build()
	if err != nil {
		panic(err)
	}

	svc := ringrpq.NewService(db, ringrpq.ServiceConfig{Workers: 2})
	defer svc.Close()
	ctx := context.Background()

	// Queries go through the pool; repeated queries hit the result
	// cache ("(l1|l5)+" and " (l1|l5)+ " canonicalise to one entry).
	sols, err := svc.Query(ctx, "Baquedano", "(l1|l5)+", "?station")
	if err != nil {
		panic(err)
	}
	sort.Slice(sols, func(i, j int) bool { return sols[i].Object < sols[j].Object })
	for _, s := range sols {
		fmt.Printf("%s -> %s\n", s.Subject, s.Object)
	}

	n, err := svc.Count(ctx, "Baquedano", " (l1|l5)+ ", "?station")
	if err != nil {
		panic(err)
	}
	st := svc.Stats()
	fmt.Printf("count=%d workers=%d\n", n, st.Workers)

	// Batches fan out across the pool.
	results := svc.Batch(ctx, []ringrpq.Request{
		{Subject: "?x", Expr: "l1", Object: "?y"},
		{Subject: "?x", Expr: "l1/l1", Object: "LosHeroes"},
	})
	fmt.Printf("batch: %d and %d solutions\n", results[0].N, results[1].N)

	// Output:
	// Baquedano -> BellasArtes
	// Baquedano -> LosHeroes
	// Baquedano -> UCh
	// count=3 workers=2
	// batch: 2 and 1 solutions
}
