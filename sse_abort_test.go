package ringrpq

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// abortingWriter simulates a client that vanishes mid-stream without
// firing the request context (a dead NAT peer, a buffering proxy whose
// downstream hung up): the first failAfter frames succeed, then every
// write — or, with failFlush, every flush — errors like a broken pipe.
type abortingWriter struct {
	mu        sync.Mutex
	header    http.Header
	writes    int
	failAfter int
	failFlush bool
}

func (w *abortingWriter) Header() http.Header { return w.header }
func (w *abortingWriter) WriteHeader(int)     {}

func (w *abortingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.writes++
	if !w.failFlush && w.writes > w.failAfter {
		return 0, errors.New("write: broken pipe")
	}
	return len(p), nil
}

func (w *abortingWriter) Flush() {}

func (w *abortingWriter) FlushError() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failFlush && w.writes > w.failAfter {
		return errors.New("flush: broken pipe")
	}
	return nil
}

// An SSE subscriber whose connection dies without cancelling the
// request context must be torn down promptly via the write (or flush)
// error — not left looping on silently-failing heartbeats — and the
// subscription must stay resumable.
func TestSubscribeSSEAbortedClient(t *testing.T) {
	for _, failFlush := range []bool{false, true} {
		name := "write-error"
		if failFlush {
			name = "flush-error"
		}
		t.Run(name, func(t *testing.T) {
			db := buildLineDB(t, 3)
			svc := NewService(db, ServiceConfig{Workers: 2})
			defer svc.Close()
			h := svc.Handler(HandlerConfig{})

			// Frame 1 (ready) succeeds; frame 2 (the snapshot baseline
			// delta) hits the broken pipe.
			w := &abortingWriter{header: http.Header{}, failAfter: 1, failFlush: failFlush}
			req := httptest.NewRequest(http.MethodGet, "/subscribe?expr=p&snapshot=true", nil)
			done := make(chan struct{})
			go func() {
				h.ServeHTTP(w, req)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("SSE handler did not return after the client aborted")
			}

			// Detached, not destroyed: the client can resume via id/from.
			st := svc.Stats()
			if st.Standing.Active != 1 || st.Standing.Detached != 1 {
				t.Fatalf("standing stats after abort: %+v", st.Standing)
			}
		})
	}
}
