package ringrpq

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, layout := range []Layout{WaveletMatrix, WaveletTree} {
		db := metroDBWithLayout(t, layout)
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadDB(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Stats() != db.Stats() {
			t.Fatalf("stats differ: %+v vs %+v", loaded.Stats(), db.Stats())
		}
		for _, q := range [][3]string{
			{"Baquedano", "l5+/bus", "?y"},
			{"?x", "(l1|l2|l5)+", "?y"},
			{"?x", "^bus", "BellasArtes"},
			{"Baquedano", "l5+/bus", "SantaAna"},
		} {
			want := sols(t, db, q[0], q[1], q[2])
			got := sols(t, loaded, q[0], q[1], q[2])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("layout %v %v: loaded %v, want %v", layout, q, got, want)
			}
		}
	}
}

func metroDBWithLayout(t *testing.T, layout Layout) *DB {
	t.Helper()
	b := NewBuilder()
	b.SetLayout(layout)
	add := func(s, p, o string) { b.Add(s, p, o); b.Add(o, p, s) }
	add("Baquedano", "l1", "UCh")
	add("UCh", "l1", "LosHeroes")
	add("LosHeroes", "l2", "SantaAna")
	add("SantaAna", "l5", "BellasArtes")
	add("BellasArtes", "l5", "Baquedano")
	b.Add("SantaAna", "bus", "UCh")
	b.Add("BellasArtes", "bus", "SantaAna")
	b.Add("BellasArtes", "bus", "UCh")
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func sols(t *testing.T, db *DB, s, e, o string) []string {
	t.Helper()
	res, err := db.Query(s, e, o)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(res))
	for i, r := range res {
		out[i] = r.Subject + "|" + r.Object
	}
	sort.Strings(out)
	return out
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"xxxx",
		"rdb1 but then garbage follows here",
	}
	for _, c := range cases {
		if _, err := LoadDB(strings.NewReader(c)); err == nil {
			t.Errorf("LoadDB(%q) succeeded", c)
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	db := metroDBWithLayout(t, WaveletMatrix)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, n := range []int{1, 8, len(data) / 2, len(data) - 1} {
		if _, err := LoadDB(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("truncated to %d bytes: load succeeded", n)
		}
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	db := metroDBWithLayout(t, WaveletMatrix)
	var a, b bytes.Buffer
	if err := db.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same DB differ")
	}
}
