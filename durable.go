package ringrpq

// This file is the durability layer: a database opened with OpenDurable
// appends every update batch to a write-ahead log before publishing it
// (see Apply in update.go), checkpoints the rebuilt static index on
// every compaction, and reconstructs its exact pre-crash state at the
// next OpenDurable — checkpoint first, then a replay of the log's
// surviving suffix. Standing-query registrations ride the same log (and
// the checkpoint's subscription table), so resume cursors survive a
// restart too.
//
// Determinism is what makes log replay sufficient: node ids are
// assigned by first appearance (Dict.Intern), and Apply interns under
// the holder lock only after the batch's WAL append succeeded, so
// replaying batches in version order re-assigns the same ids the
// original run did. A checkpoint pairs the rebuilt ring with exactly
// the dictionary prefix it was built against (compactNow rebuilds at
// base.numNodes), so recovery's dictionary grows from that prefix the
// same way the original dictionary did.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ringrpq/internal/ring"
	"ringrpq/internal/serial"
	"ringrpq/internal/standing"
	"ringrpq/internal/triples"
	"ringrpq/internal/wal"
)

// WAL record kinds. A record's key is the data version it produces
// (batch, swap) or was registered at (sub, unsub).
const (
	recBatch = 1 // adds + dels, key = resulting data version
	recSwap  = 2 // compaction swap's version bump, empty body
	recSub   = 3 // standing-query registration, key = start version
	recUnsub = 4 // standing-query removal
)

// Checkpoint file format: a fixed header (magic, format, body length,
// body CRC) over a serial-encoded body. Files are written to a temp
// name and renamed into place, so a checkpoint either exists whole or
// not at all; the previous checkpoint is only deleted after the new one
// is durable.
const (
	ckptMagic      = "rckp"
	ckptFormat     = 1
	ckptHeaderSize = 20 // magic(4) + u32 format + u64 bodyLen + u32 crc
	ckptTempName   = "checkpoint.tmp"
)

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

func ckptName(version uint64) string {
	return fmt.Sprintf("checkpoint-%016x.rckp", version)
}

func parseCkptName(name string) (uint64, bool) {
	const prefix, suffix = "checkpoint-", ".rckp"
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// walSink is the holder's durability attachment (holder.wal): the open
// log plus the checkpoint writer's filesystem handle and counters.
type walSink struct {
	log *wal.Log
	fs  wal.FS
	dir string
	// ackSync makes Apply (and Subscribe) fsync before acknowledging —
	// the SyncAlways contract.
	ackSync bool
	policy  string

	checkpoints    atomic.Int64
	checkpointErrs atomic.Int64
	lastCheckpoint atomic.Uint64
}

// appendSub logs a standing-query registration.
func (s *walSink) appendSub(version uint64, rec standing.SubRecord) error {
	lsn, err := s.log.Append(version, encodeSubRecord(rec))
	if err != nil {
		return err
	}
	if s.ackSync {
		return s.log.Sync(lsn)
	}
	return nil
}

// appendUnsub logs a standing-query removal. Best-effort: the
// subscription is already gone in memory, and losing the record only
// means recovery re-registers a subscription nobody will resume — it
// can be unsubscribed again.
func (s *walSink) appendUnsub(version uint64, id uint64) {
	if lsn, err := s.log.Append(version, encodeUnsubRecord(id)); err == nil && s.ackSync {
		//lint:ignore walerr unsub records are best-effort by design (see doc comment): losing one only re-registers a subscription nobody resumes
		s.log.Sync(lsn)
	}
}

// --- record encoding ---

func writeTriples(w *serial.Writer, ts []Triple) {
	w.Int(len(ts))
	for _, t := range ts {
		w.String(t.Subject)
		w.String(t.Predicate)
		w.String(t.Object)
	}
}

// readTriples caps preallocation from the untrusted length prefix; the
// slice grows with the bytes actually decoded.
func readTriples(r *serial.Reader) []Triple {
	n := r.Int()
	if r.Err() != nil || n == 0 {
		return nil
	}
	c := n
	if c > 4096 {
		c = 4096
	}
	out := make([]Triple, 0, c)
	for i := 0; i < n; i++ {
		t := Triple{Subject: r.String(), Predicate: r.String(), Object: r.String()}
		if r.Err() != nil {
			return nil
		}
		out = append(out, t)
	}
	return out
}

func encodeBatchRecord(adds, dels []Triple) []byte {
	var buf bytes.Buffer
	w := serial.NewWriter(&buf)
	w.Uvarint(recBatch)
	writeTriples(w, adds)
	writeTriples(w, dels)
	w.Flush() //nolint:errcheck // bytes.Buffer writes cannot fail
	return buf.Bytes()
}

func encodeSwapRecord() []byte {
	var buf bytes.Buffer
	w := serial.NewWriter(&buf)
	w.Uvarint(recSwap)
	w.Flush() //nolint:errcheck
	return buf.Bytes()
}

// encodeSubBody writes the registration shared by sub records and the
// checkpoint's subscription table. Request.Snapshot is deliberately not
// persisted: a recovered subscription must not replay its baseline as a
// delta.
func encodeSubBody(w *serial.Writer, rec standing.SubRecord) {
	w.Uvarint(rec.ID)
	w.String(rec.Req.Subject)
	w.String(rec.Req.Object)
	w.String(rec.Req.Expr)
	w.String(rec.Req.Pattern)
	w.Int(rec.Req.QueueDepth)
}

func readSubBody(r *serial.Reader) standing.SubRecord {
	var rec standing.SubRecord
	rec.ID = r.Uvarint()
	rec.Req.Subject = r.String()
	rec.Req.Object = r.String()
	rec.Req.Expr = r.String()
	rec.Req.Pattern = r.String()
	rec.Req.QueueDepth = r.Int()
	return rec
}

func encodeSubRecord(rec standing.SubRecord) []byte {
	var buf bytes.Buffer
	w := serial.NewWriter(&buf)
	w.Uvarint(recSub)
	encodeSubBody(w, rec)
	w.Flush() //nolint:errcheck
	return buf.Bytes()
}

func encodeUnsubRecord(id uint64) []byte {
	var buf bytes.Buffer
	w := serial.NewWriter(&buf)
	w.Uvarint(recUnsub)
	w.Uvarint(id)
	w.Flush() //nolint:errcheck
	return buf.Bytes()
}

// --- replay ---

// applyWALRecord replays one surviving log record during OpenDurable.
// The record's integrity was already verified by the log's CRC scan;
// errors here mean the log and the checkpoint disagree (a version gap)
// or a format mismatch, both unrecoverable.
func (db *DB) applyWALRecord(key uint64, payload []byte) error {
	r := serial.NewReader(bytes.NewReader(payload))
	kind := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("record kind: %w", err)
	}
	switch kind {
	case recBatch:
		adds := readTriples(r)
		dels := readTriples(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("batch record: %w", err)
		}
		return db.applyRecoveredBatch(key, adds, dels)
	case recSwap:
		return db.applyRecoveredSwap(key)
	case recSub:
		rec := readSubBody(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("sub record: %w", err)
		}
		db.recoverSub(rec)
		return nil
	case recUnsub:
		id := r.Uvarint()
		if err := r.Err(); err != nil {
			return fmt.Errorf("unsub record: %w", err)
		}
		db.Unsubscribe(id)
		return nil
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
}

// applyRecoveredBatch is Apply minus the WAL append and the compaction
// trigger: records at or before the checkpoint are skipped, the next
// version applies, and anything else is a gap the checkpoint/truncation
// invariants rule out on an uncorrupted directory.
func (db *DB) applyRecoveredBatch(version uint64, adds, dels []Triple) error {
	preds, err := db.predsOf(adds)
	if err != nil {
		return err
	}
	h := db.h
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.cur.Load()
	if version <= cur.version {
		return nil // covered by the checkpoint
	}
	if version != cur.version+1 {
		return fmt.Errorf("version gap: at %d, next record is %d", cur.version, version)
	}
	addEdges := db.internAdds(adds, preds)
	delEdges := db.resolveDels(dels)
	ov := cur.ov.Apply(version, addEdges, delEdges, cur.inStatic)
	keepAfter := ^uint64(0)
	if base := h.compactBase.Load(); base >= 0 {
		keepAfter = uint64(base)
	}
	ov = ov.WithBatchesAfter(keepAfter)
	next := &snapshot{
		r: cur.r, set: cur.set, ov: ov,
		epoch:    cur.epoch,
		version:  version,
		numNodes: db.g.NumNodes(),
	}
	h.publish(next)
	if reg := h.standing.Load(); reg != nil && reg.Active() {
		cur.refs.Add(1)
		next.refs.Add(1)
		reg.Notify(standing.Batch{
			Version: version,
			Adds:    addEdges, Dels: delEdges,
			Old: cur, New: next,
		})
	}
	return nil
}

// applyRecoveredSwap replays a compaction's version bump. The rebuild
// itself is not repeated — the data is identical either way, and if the
// compaction's checkpoint survived, recovery started from it and the
// swap record was truncated along with everything it covered.
func (db *DB) applyRecoveredSwap(version uint64) error {
	h := db.h
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.cur.Load()
	if version <= cur.version {
		return nil
	}
	if version != cur.version+1 {
		return fmt.Errorf("version gap: at %d, next record is %d", cur.version, version)
	}
	next := &snapshot{
		r: cur.r, set: cur.set, ov: cur.ov,
		epoch:    cur.epoch,
		version:  version,
		numNodes: cur.numNodes,
	}
	h.publish(next)
	if reg := h.standing.Load(); reg != nil && reg.Active() {
		reg.Notify(standing.Batch{Version: version})
	}
	return nil
}

// recoverSub re-registers one persisted subscription. Failures drop
// the subscription (with a note on stderr) rather than failing
// recovery: a query that no longer compiles — say, a predicate gone
// after an offline rebuild — must not hold the whole database hostage.
func (db *DB) recoverSub(rec standing.SubRecord) {
	if err := db.registry().SubscribeRecovered(rec); err != nil {
		fmt.Fprintf(os.Stderr, "ringrpq: recovery dropped subscription %d: %v\n", rec.ID, err)
	}
}

// --- checkpoints ---

// writeCheckpoint persists the rebuilt static index (all data through
// cpVersion, consolidated) plus the dictionaries and the live
// subscription table. Called by compactNow after the swap; on success
// the log is truncated up to cpVersion.
func (db *DB) writeCheckpoint(sink *walSink, newR *ring.Ring, newSet *ring.ShardSet, cpVersion uint64, numNodes int) error {
	var buf bytes.Buffer
	w := serial.NewWriter(&buf)
	w.Uint64(cpVersion)
	// The node dictionary is written as the prefix the ring was rebuilt
	// against: batches that raced the rebuild may have grown it past
	// numNodes, and their interns are re-done by log replay.
	names := db.g.Nodes.NamesView()
	if numNodes > len(names) {
		return fmt.Errorf("ringrpq: checkpoint: %d nodes exceeds dictionary length %d", numNodes, len(names))
	}
	w.Int(numNodes)
	for _, name := range names[:numNodes] {
		w.String(name)
	}
	db.g.Preds.Encode(w)
	w.Uvarint(uint64(db.g.NumPreds))
	if newSet != nil {
		w.Int(1)
		newSet.Encode(w)
	} else {
		w.Int(0)
		newR.Encode(w)
	}
	var recs []standing.SubRecord
	if reg := db.h.standing.Load(); reg != nil {
		recs = reg.SnapshotSubs()
	}
	w.Int(len(recs))
	for _, rec := range recs {
		encodeSubBody(w, rec)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	body := buf.Bytes()

	var hdr [ckptHeaderSize]byte
	copy(hdr[0:4], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], ckptFormat)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(body)))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(body, ckptCRC))

	tmp := filepath.Join(sink.dir, ckptTempName)
	final := filepath.Join(sink.dir, ckptName(cpVersion))
	f, err := sink.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := sink.fs.Rename(tmp, final); err != nil {
		return err
	}
	if err := sink.fs.SyncDir(sink.dir); err != nil {
		return err
	}
	// The new checkpoint is durable; retire older ones. Failures here
	// only leave extra files for the next recovery to skip past.
	if entries, err := sink.fs.ReadDir(sink.dir); err == nil {
		removed := false
		for _, name := range entries {
			if v, ok := parseCkptName(name); ok && v < cpVersion {
				if sink.fs.Remove(filepath.Join(sink.dir, name)) == nil {
					removed = true
				}
			}
		}
		if removed {
			if err := sink.fs.SyncDir(sink.dir); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkpointState is one decoded checkpoint.
type checkpointState struct {
	db      *DB
	version uint64
	subs    []standing.SubRecord
}

func readCheckpoint(fsys wal.FS, path string) (*checkpointState, error) {
	size, err := fsys.Size(path)
	if err != nil {
		return nil, err
	}
	if size < ckptHeaderSize {
		return nil, fmt.Errorf("short checkpoint (%d bytes)", size)
	}
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [ckptHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, err
	}
	if string(hdr[0:4]) != ckptMagic {
		return nil, fmt.Errorf("bad checkpoint magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != ckptFormat {
		return nil, fmt.Errorf("unsupported checkpoint format %d", v)
	}
	bodyLen := binary.LittleEndian.Uint64(hdr[8:16])
	// Bound the allocation by the file's actual size, so a corrupt
	// length can never force more memory than the input holds.
	if bodyLen != uint64(size)-ckptHeaderSize {
		return nil, fmt.Errorf("checkpoint body length %d does not match file size %d", bodyLen, size)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(f, body); err != nil {
		return nil, err
	}
	if got := crc32.Checksum(body, ckptCRC); got != binary.LittleEndian.Uint32(hdr[16:20]) {
		return nil, errors.New("checkpoint CRC mismatch")
	}

	r := serial.NewReader(bytes.NewReader(body))
	cpVersion := r.Uint64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	nodes := triples.NewDict()
	for i := 0; i < n; i++ {
		name := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		nodes.Intern(name)
	}
	if nodes.Len() != n {
		return nil, fmt.Errorf("checkpoint node dictionary has duplicates (%d of %d unique)", nodes.Len(), n)
	}
	preds := triples.DecodeDict(r)
	np := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if np > math.MaxUint32 {
		return nil, fmt.Errorf("checkpoint predicate count %d overflows", np)
	}
	g := &triples.Graph{Nodes: nodes, Preds: preds, NumPreds: uint32(np)}
	var db *DB
	if sharded := r.Int(); sharded == 1 {
		set, err := ring.DecodeShardSet(r)
		if err != nil {
			return nil, err
		}
		if set.NumNodes != n || set.NumPreds != g.NumCompletedPreds() {
			return nil, fmt.Errorf("checkpoint shard set/dictionary mismatch (%d/%d nodes, %d/%d preds)",
				set.NumNodes, n, set.NumPreds, g.NumCompletedPreds())
		}
		layout := ring.WaveletMatrix
		if set.K > 0 {
			layout = set.Shards[0].Layout()
		}
		db = newDB(g, nil, set, layout)
	} else {
		rg, err := ring.Decode(r)
		if err != nil {
			return nil, err
		}
		if rg.NumNodes != n || rg.NumPreds != g.NumCompletedPreds() {
			return nil, fmt.Errorf("checkpoint ring/dictionary mismatch (%d/%d nodes, %d/%d preds)",
				rg.NumNodes, n, rg.NumPreds, g.NumCompletedPreds())
		}
		db = newDB(g, rg, nil, rg.Layout())
	}
	m := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	c := m
	if c > 4096 {
		c = 4096
	}
	subs := make([]standing.SubRecord, 0, c)
	for i := 0; i < m; i++ {
		rec := readSubBody(r)
		if err := r.Err(); err != nil {
			return nil, err
		}
		subs = append(subs, rec)
	}
	// The fresh holder's snapshot is not shared yet; stamp the version
	// the checkpoint's data corresponds to so replay lines up.
	db.h.cur.Load().version = cpVersion
	return &checkpointState{db: db, version: cpVersion, subs: subs}, nil
}

// --- opening ---

// WALConfig configures OpenDurable.
type WALConfig struct {
	// Dir holds the log segments and checkpoints; created if missing.
	Dir string
	// Fsync selects the durability policy: "always" (the default —
	// Apply's acknowledgement implies the batch survives any crash),
	// "interval" (fsync on a background ticker; a crash loses at most
	// the last interval), or "never" (the OS decides; fastest).
	Fsync string
	// FsyncInterval is the "interval" policy's period (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes is the log's segment roll threshold (default 16 MiB).
	SegmentBytes int64
	// Standing, when non-zero, configures the standing-query subsystem
	// before any persisted subscription is re-registered (equivalent to
	// calling SetStandingConfig first).
	Standing StandingConfig
}

// OpenDurable opens (or creates) a durable database on cfg.Dir. With
// no prior state the initial database comes from build — typically a
// Builder or LoadDB closure — and every later OpenDurable reconstructs
// the exact acknowledged state from the newest checkpoint plus the
// log's surviving suffix; build is not called then. Torn log tails
// (records half-written at the crash) are detected by CRC and
// truncated; under Fsync "always" no acknowledged update is ever lost.
//
// The directory must not be shared: one OpenDurable'd database owns it
// exclusively.
func OpenDurable(cfg WALConfig, build func() (*DB, error)) (*DB, error) {
	return openDurable(cfg, build, wal.OSFS())
}

func openDurable(cfg WALConfig, build func() (*DB, error), fsys wal.FS) (*DB, error) {
	if cfg.Dir == "" {
		return nil, errors.New("ringrpq: durable: empty directory")
	}
	var policy wal.Policy
	policyName := cfg.Fsync
	switch cfg.Fsync {
	case "", "always":
		policy, policyName = wal.SyncAlways, "always"
	case "interval":
		policy = wal.SyncInterval
	case "never":
		policy = wal.SyncNever
	default:
		return nil, fmt.Errorf("ringrpq: durable: unknown fsync policy %q (want always, interval or never)", cfg.Fsync)
	}
	if err := fsys.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("ringrpq: durable: %w", err)
	}
	// A leftover temp file is a checkpoint that never made it.
	if err := fsys.Remove(filepath.Join(cfg.Dir, ckptTempName)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("ringrpq: durable: %w", err)
	}

	entries, err := fsys.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("ringrpq: durable: %w", err)
	}
	type ckpt struct {
		name    string
		version uint64
	}
	var ckpts []ckpt
	for _, name := range entries {
		if v, ok := parseCkptName(name); ok {
			ckpts = append(ckpts, ckpt{name, v})
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i].version > ckpts[j].version })

	// Newest readable checkpoint wins. A checkpoint that exists but
	// cannot be read is fatal when no older one can either: the log was
	// truncated up to it, so building from scratch would silently lose
	// acknowledged data.
	var st *checkpointState
	var lastErr error
	for _, c := range ckpts {
		st, lastErr = readCheckpoint(fsys, filepath.Join(cfg.Dir, c.name))
		if lastErr == nil {
			break
		}
		fmt.Fprintf(os.Stderr, "ringrpq: skipping checkpoint %s: %v\n", c.name, lastErr)
		st = nil
	}
	if st == nil && len(ckpts) > 0 {
		return nil, fmt.Errorf("ringrpq: durable: no readable checkpoint in %s: %w", cfg.Dir, lastErr)
	}

	var db *DB
	if st != nil {
		db = st.db
	} else {
		db, err = build()
		if err != nil {
			return nil, err
		}
		if db == nil {
			return nil, errors.New("ringrpq: durable: build returned no database")
		}
		if db.h.wal.Load() != nil {
			return nil, errors.New("ringrpq: durable: database already has a write-ahead log")
		}
	}
	if cfg.Standing != (StandingConfig{}) {
		db.SetStandingConfig(cfg.Standing)
	}

	log, err := wal.Open(wal.Options{
		Dir:          cfg.Dir,
		Policy:       policy,
		Interval:     cfg.FsyncInterval,
		SegmentBytes: cfg.SegmentBytes,
		FS:           fsys,
	})
	if err != nil {
		return nil, fmt.Errorf("ringrpq: durable: %w", err)
	}

	// Re-register checkpointed subscriptions before replay, so replayed
	// batches extend their delta histories exactly as the live run did;
	// sub records still in the log re-register the rest in stream order
	// (SubscribeRecovered skips ids that already exist).
	if st != nil {
		for _, rec := range st.subs {
			db.recoverSub(rec)
		}
	}
	if err := log.Replay(db.applyWALRecord); err != nil {
		log.Close()
		return nil, fmt.Errorf("ringrpq: durable: replay: %w", err)
	}
	// Drain the registry's queue so recovered subscriptions' histories
	// are complete before the first client resumes.
	if reg := db.h.standing.Load(); reg != nil {
		reg.Sync()
	}

	sink := &walSink{
		log:     log,
		fs:      fsys,
		dir:     cfg.Dir,
		ackSync: policy == wal.SyncAlways,
		policy:  policyName,
	}
	if st != nil {
		sink.lastCheckpoint.Store(st.version)
	}
	db.h.wal.Store(sink)
	return db, nil
}

// CloseWAL flushes and closes the write-ahead log. The database stays
// queryable, but every later Apply fails: detaching the log silently
// would downgrade a durable database to an in-memory one. Shared with
// all clones; safe to call more than once.
func (db *DB) CloseWAL() error {
	sink := db.h.wal.Load()
	if sink == nil {
		return nil
	}
	err := sink.log.Close()
	if errors.Is(err, wal.ErrClosed) {
		return nil
	}
	return err
}

// WALStats describes the durability layer; the zero value (Enabled
// false) means the database was not opened with OpenDurable.
type WALStats struct {
	Enabled     bool
	Dir         string
	FsyncPolicy string
	// Appended / AppendedBytes / Fsyncs count this process's log writes;
	// Replayed and TornBytes describe the recovery that opened it.
	Appended      int64
	AppendedBytes int64
	Fsyncs        int64
	Replayed      int64
	TornBytes     int64
	Segments      int
	SizeBytes     int64
	// Checkpoints / CheckpointErrors count compaction checkpoints this
	// process; LastCheckpointVersion is the newest durable checkpoint's
	// data version (log segments at or before it are dropped).
	Checkpoints           int64
	CheckpointErrors      int64
	LastCheckpointVersion uint64
	// Wedged reports a latched log I/O failure: appends are refused and
	// the daemon should fail its readiness probe. WedgeReason carries
	// the latched error text.
	Wedged      bool
	WedgeReason string
}

// WALStats snapshots the durability counters.
func (db *DB) WALStats() WALStats {
	sink := db.h.wal.Load()
	if sink == nil {
		return WALStats{}
	}
	ls := sink.log.Stats()
	var wedged bool
	var reason string
	if err := sink.log.Err(); err != nil {
		wedged, reason = true, err.Error()
	}
	return WALStats{
		Enabled:               true,
		Dir:                   sink.dir,
		FsyncPolicy:           sink.policy,
		Wedged:                wedged,
		WedgeReason:           reason,
		Appended:              ls.Appended,
		AppendedBytes:         ls.AppendedBytes,
		Fsyncs:                ls.Fsyncs,
		Replayed:              ls.Replayed,
		TornBytes:             ls.TornBytes,
		Segments:              ls.Segments,
		SizeBytes:             ls.SizeBytes,
		Checkpoints:           sink.checkpoints.Load(),
		CheckpointErrors:      sink.checkpointErrs.Load(),
		LastCheckpointVersion: sink.lastCheckpoint.Load(),
	}
}
