package ringrpq

// End-to-end kill+reboot durability over the HTTP service: a poll
// subscriber's resume cursor, acknowledged via /update responses under
// fsync=always, must survive the server process dying without any
// shutdown at all.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

type subPollJSON struct {
	ID      uint64 `json:"id"`
	Version uint64 `json:"version"`
	Deltas  []struct {
		Version uint64 `json:"version"`
		Added   []struct {
			Subject string `json:"subject"`
			Object  string `json:"object"`
		} `json:"added"`
	} `json:"deltas"`
	Closed bool   `json:"closed"`
	Error  string `json:"error"`
}

func pollSubscribe(t *testing.T, url string) subPollJSON {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var out subPollJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	if out.Error != "" || out.Closed {
		t.Fatalf("subscribe %s: %+v", url, out)
	}
	return out
}

func TestDurableServiceKillRebootResume(t *testing.T) {
	dir := t.TempDir()
	cfg := WALConfig{Dir: dir, Fsync: "always"}
	db, err := OpenDurable(cfg, buildCrashSeed)
	if err != nil {
		t.Fatal(err)
	}
	db.SetCompactionThreshold(-1)
	svc := NewService(db, ServiceConfig{})
	ts := httptest.NewServer(svc.Handler(HandlerConfig{}))

	// Register a standing query; the first poll round returns its id and
	// resume cursor.
	sub := pollSubscribe(t, ts.URL+"/subscribe?expr=p0&mode=poll&wait=50ms")
	cursor := sub.Version

	// Two updates, acknowledged over HTTP: under fsync=always a 200
	// means the batch is on disk.
	for i := 0; i < 2; i++ {
		body, _ := json.Marshal(map[string]any{
			"add": []map[string]string{{"s": fmt.Sprintf("u%d", i), "p": "p0", "o": fmt.Sprintf("v%d", i)}},
		})
		resp, err := http.Post(ts.URL+"/update", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update %d: status %d", i, resp.StatusCode)
		}
	}

	// Kill: the server vanishes with no service drain and no WAL close.
	ts.Close()

	// Reboot on the same directory and resume from the pre-crash cursor.
	db2, err := OpenDurable(cfg, buildCrashSeed)
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	db2.SetCompactionThreshold(-1)
	svc2 := NewService(db2, ServiceConfig{})
	ts2 := httptest.NewServer(svc2.Handler(HandlerConfig{}))
	defer func() {
		ts2.Close()
		svc2.Close()
		db2.CloseWAL()
		svc.Close()
		db.CloseWAL() //nolint:errcheck // the "killed" log shares the dir
	}()

	got := pollSubscribe(t, fmt.Sprintf("%s/subscribe?id=%d&from=%d&mode=poll&wait=2s", ts2.URL, sub.ID, cursor))
	if got.ID != sub.ID {
		t.Fatalf("resumed id = %d, want %d", got.ID, sub.ID)
	}
	if len(got.Deltas) != 2 {
		t.Fatalf("resumed deltas = %+v, want both pre-crash updates", got)
	}
	for i, d := range got.Deltas {
		if d.Version != cursor+uint64(i)+1 || len(d.Added) != 1 || d.Added[0].Subject != fmt.Sprintf("u%d", i) {
			t.Fatalf("delta %d = %+v", i, d)
		}
	}
	if got.Version != cursor+2 {
		t.Fatalf("resumed cursor = %d, want %d", got.Version, cursor+2)
	}
}
