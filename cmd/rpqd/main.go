// Command rpqd serves regular path queries over HTTP: it loads a triple
// file (or a serialised index), starts a ringrpq query service — a
// worker pool over the shared immutable ring index, with compiled-query
// and result caches — and exposes it as a JSON API.
//
// Usage:
//
//	rpqd -data graph.nt [-shards K] [-addr :8080] [-workers N] [-queue N]
//	     [-timeout D] [-limit N] [-expr-cache N]
//	     [-result-cache N] [-result-cache-bytes N]
//	     [-sub-queue N] [-sub-history N]
//	rpqd -index graph.ring ...
//	rpqd -wal-dir ./state [-data graph.nt] [-fsync always|interval|never]
//
// With -shards K the index is partitioned into K sub-rings built in
// parallel; queries whose expressions span shards are evaluated with
// intra-query shard parallelism, composing with the worker pool. A
// serialised index loaded with -index keeps whatever layout (rdb1
// single ring or rdbs1 sharded) it was saved with.
//
// With -wal-dir every applied update is written to a write-ahead log
// before it is acknowledged (under the default -fsync always, after an
// fsync), compactions checkpoint the rebuilt index into the same
// directory, and a restart — clean or after a crash — recovers the
// exact acknowledged state, including standing-query subscriptions and
// their resume cursors. -data/-index are only consulted when the
// directory holds no state yet.
//
// Endpoints:
//
//	POST /query   {"subject":"?x","expr":"a/b*","object":"?y",
//	               "limit":100,"timeout":"2s","count":false}
//	POST /select  {"query":"SELECT ?x ?y WHERE { ?x a/b* ?y . ?y c wd:Q30 }",
//	               "limit":100,"timeout":"2s","count":false}
//	POST /batch   {"queries":[{...},{...}]}
//	POST /update  {"add":[{"s":"a","p":"knows","o":"b"}],"del":[...]}
//	              or bulk NDJSON (Content-Type: application/x-ndjson,
//	              one {"op":"add"|"del","s":..,"p":..,"o":..} per line)
//	GET  /subscribe   standing query: ?expr= or ?pattern= registers a
//	                  subscription and streams incremental result deltas
//	                  as Server-Sent Events (&mode=poll long-polls
//	                  instead; &id=N&from=V resumes after a disconnect)
//	DELETE /subscribe ?id=N unsubscribes
//	GET  /stats   service and index statistics
//	GET  /healthz liveness probe (200 while the process serves)
//	GET  /readyz  readiness probe: 503 with a reason once the service
//	              is shutting down or the write-ahead log has wedged
//	GET  /metrics Prometheus text exposition of every service counter,
//	              including request/eval latency histograms
//	GET  /debug/slowlog  recent slow queries as JSON (with -slow-query)
//
// Observability: -slow-query D logs any request slower than D (structured
// slog line per query, plus the bounded in-memory ring behind
// /debug/slowlog); "profile": true on /query, /select or /batch items
// returns a span trace of that request's evaluation under "profile";
// -debug-addr :6060 serves net/http/pprof on a separate listener.
//
// Empty subject/object fields are variables. An absent limit applies
// the -limit default; an explicit 0 asks for unlimited results, and
// responses that fill their cap carry "limit_reached": true.
// Evaluation timeouts are not errors: the response carries the
// solutions found in time with "timed_out": true.
//
// /select evaluates graph patterns — conjunctions of triple patterns
// and RPQ clauses (see the README's "Graph patterns" section) — and
// returns {"vars": [...], "rows": [[...], ...]}. On a sharded index,
// patterns whose predicates span shards fail with a cross-shard error
// (single-shard patterns are routed wholesale).
//
// /update applies live updates atomically: queries in flight finish on
// the snapshot they started with, later queries see the union
// ring ∪ adds − dels, and a background compactor (tuned with
// -compact-threshold) rebuilds the ring and swaps it in atomically
// once the overlay grows past the threshold. New node names are fine;
// new predicate names are rejected (the completed predicate id space
// is fixed at build time).
//
// /subscribe turns a query into a standing one: every applied update
// batch is diffed against the subscription incrementally and the
// additions/retractions stream to the client in data-version order
// (see the README's "Standing queries" section). -sub-queue bounds the
// per-subscriber pending delta queue (a slower consumer is marked
// lagged and must resume from its last seen version); -sub-history
// bounds the retained per-subscription delta history that serves those
// resumes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (served only on -debug-addr)
	"os"
	"os/signal"
	"syscall"
	"time"

	"ringrpq"
)

func main() {
	var (
		data       = flag.String("data", "", "triple file to load")
		index      = flag.String("index", "", "serialised index to load (instead of -data)")
		shards     = flag.Int("shards", 0, "partition a -data build into this many sub-rings (0/1 = single ring; ignored with -index, whose file fixes the layout)")
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "request queue depth (0 = 4×workers)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-query timeout (0 = none)")
		limit      = flag.Int("limit", 100000, "default per-query solution cap (0 = unlimited)")
		exprC      = flag.Int("expr-cache", 0, "compiled-expression cache entries (0 = default, negative = off)")
		resC       = flag.Int("result-cache", 0, "result cache entries (0 = default, negative = off)")
		resBytes   = flag.Int64("result-cache-bytes", 0, "result cache byte bound (0 = default, negative = off)")
		maxBatch   = flag.Int("max-batch", 1024, "maximum queries per /batch call")
		compact    = flag.Int("compact-threshold", 0, "overlay size triggering background compaction (0 = auto: N/4, negative = disabled)")
		subQueue   = flag.Int("sub-queue", 0, "per-subscription pending delta queue depth (0 = default 64)")
		subHistory = flag.Int("sub-history", 0, "per-subscription delta history retained for resume (0 = default 256)")
		group      = flag.Bool("group", false, "cross-query traversal grouping: workers drain queued 2RPQ jobs, dedup identical ones and share one wavelet descent per BFS level")
		groupMax   = flag.Int("group-max", 0, "jobs one shared traversal serves at most (0 = default 8; with -group)")
		walDir     = flag.String("wal-dir", "", "durability directory (write-ahead log + checkpoints): updates survive restarts and crashes; after the first run -data/-index are only needed if the directory is empty")
		fsyncPol   = flag.String("fsync", "always", "WAL fsync policy: always (ack after fsync), interval, never (with -wal-dir)")
		fsyncIvl   = flag.Duration("fsync-interval", 0, "fsync period for -fsync=interval (0 = default 100ms)")
		slowQuery  = flag.Duration("slow-query", 0, "log queries slower than this (0 = disabled); entries also appear on GET /debug/slowlog")
		slowCap    = flag.Int("slow-log-capacity", 0, "slow-query entries retained in memory (0 = default 128; with -slow-query)")
		debugAddr  = flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty = disabled)")
	)
	flag.Parse()
	if *data == "" && *index == "" && *walDir == "" {
		fmt.Fprintln(os.Stderr, "rpqd: one of -data, -index or -wal-dir is required")
		os.Exit(2)
	}

	standingCfg := ringrpq.StandingConfig{}
	if *subQueue > 0 || *subHistory > 0 {
		standingCfg = ringrpq.StandingConfig{
			QueueDepth: *subQueue,
			History:    *subHistory,
		}
	}

	var db *ringrpq.DB
	var err error
	if *walDir != "" {
		start := time.Now()
		db, err = ringrpq.OpenDurable(ringrpq.WALConfig{
			Dir:           *walDir,
			Fsync:         *fsyncPol,
			FsyncInterval: *fsyncIvl,
			Standing:      standingCfg,
		}, func() (*ringrpq.DB, error) {
			if *data == "" && *index == "" {
				return nil, errors.New("rpqd: empty -wal-dir needs -data or -index for the initial build")
			}
			return loadDB(*data, *index, *shards)
		})
		if err == nil {
			ws := db.WALStats()
			fmt.Fprintf(os.Stderr, "rpqd: durable on %s (fsync=%s): recovered %d record(s), truncated %d torn byte(s), checkpoint v%d, in %v\n",
				*walDir, ws.FsyncPolicy, ws.Replayed, ws.TornBytes, ws.LastCheckpointVersion, time.Since(start))
		}
	} else {
		db, err = loadDB(*data, *index, *shards)
	}
	if err != nil {
		fatal(err)
	}
	if *compact != 0 {
		db.SetCompactionThreshold(*compact)
	}
	if *walDir == "" && standingCfg != (ringrpq.StandingConfig{}) {
		db.SetStandingConfig(standingCfg)
	}
	fmt.Fprintf(os.Stderr, "rpqd: serving %s\n", db)

	svc := ringrpq.NewService(db, ringrpq.ServiceConfig{
		Workers:            *workers,
		QueueDepth:         *queue,
		DefaultTimeout:     *timeout,
		ExprCacheEntries:   *exprC,
		ResultCacheEntries: *resC,
		ResultCacheBytes:   *resBytes,
		GroupTraversals:    *group,
		GroupMax:           *groupMax,
		SlowQueryThreshold: *slowQuery,
		SlowLogCapacity:    *slowCap,
	})

	if *debugAddr != "" {
		// pprof lives on its own listener so profiling endpoints are
		// never exposed on the service port. The blank net/http/pprof
		// import registers its handlers on http.DefaultServeMux.
		go func() {
			fmt.Fprintf(os.Stderr, "rpqd: pprof on %s/debug/pprof/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "rpqd: debug listener: %v\n", err)
			}
		}()
	}

	server := &http.Server{
		Addr: *addr,
		Handler: svc.Handler(ringrpq.HandlerConfig{
			DefaultLimit: *limit,
			MaxBatch:     *maxBatch,
			Info: func() any {
				info := map[string]any{"index": db.Stats(), "updates": db.UpdateStats()}
				if ws := db.WALStats(); ws.Enabled {
					info["durability"] = ws
				}
				return info
			},
		}),
		// Slowloris and stuck-client protection. The write timeout would
		// kill long-lived SSE streams and long-poll rounds, so the
		// /subscribe handlers extend their own deadlines per response
		// (http.ResponseController); everything else answers in bounded
		// time.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: stop accepting connections, let in-flight
	// requests finish, then drain the service's worker pool.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rpqd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rpqd: shutting down")
		// Standing-query streams never go idle on their own; end them
		// first so Shutdown can drain the remaining connections.
		svc.CloseSubscriptions()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "rpqd: shutdown: %v\n", err)
		}
		if err := svc.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rpqd: close: %v\n", err)
		}
		// Last: every acknowledged update is already fsynced (or tick-
		// flushed); this flushes any unsynced tail and closes the log.
		if err := db.CloseWAL(); err != nil {
			fmt.Fprintf(os.Stderr, "rpqd: wal close: %v\n", err)
		}
	}
}

// loadDB builds the database from a triple file (optionally sharded)
// or loads a serialised index, whose on-disk format — rdb1 or rdbs1 —
// determines the layout.
func loadDB(data, index string, shards int) (*ringrpq.DB, error) {
	start := time.Now()
	if index != "" {
		f, err := os.Open(index)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		db, err := ringrpq.LoadDB(f)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "rpqd: loaded index (%d shard(s)) in %v\n", db.Shards(), time.Since(start))
		return db, nil
	}
	f, err := os.Open(data)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b := ringrpq.NewBuilderWithConfig(ringrpq.BuilderConfig{Shards: shards})
	if err := b.Load(f); err != nil {
		return nil, err
	}
	db, err := b.Build()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "rpqd: indexed (%d shard(s)) in %v\n", db.Shards(), time.Since(start))
	return db, nil
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintf(os.Stderr, "rpqd: %v\n", err)
	os.Exit(1)
}
