// Command datagen emits a synthetic Wikidata-shaped graph (and optionally
// a matching query log) for use with cmd/rpq and external tooling.
//
// Usage:
//
//	datagen -nodes 20000 -edges 100000 -preds 60 -out graph.nt
//	datagen -out graph.nt -queries 400 -queriesout log.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ringrpq/internal/datagen"
	"ringrpq/internal/triples"
	"ringrpq/internal/workload"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 20000, "graph nodes |V|")
		edges      = flag.Int("edges", 100000, "edge draws before dedup")
		preds      = flag.Int("preds", 60, "base predicates |P|")
		seed       = flag.Int64("seed", 1, "generation seed")
		out        = flag.String("out", "", "graph output file (required)")
		queries    = flag.Int("queries", 0, "also generate this many queries")
		queriesOut = flag.String("queriesout", "", "query log output file")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}

	g := datagen.Generate(datagen.Config{
		Seed: *seed, Nodes: *nodes, Edges: *edges, Preds: *preds,
	})
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := triples.Dump(f, g); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d triples (%d nodes, %d predicates) to %s\n",
		g.Len()/2, g.NumNodes(), g.NumPreds, *out)

	if *queries > 0 {
		if *queriesOut == "" {
			fmt.Fprintln(os.Stderr, "datagen: -queriesout required with -queries")
			os.Exit(2)
		}
		qs := workload.Generate(g, workload.Config{Seed: *seed + 1, Total: *queries})
		qf, err := os.Create(*queriesOut)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(qf)
		for _, q := range qs {
			fmt.Fprintln(w, q.String())
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := qf.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d queries to %s\n", len(qs), *queriesOut)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
