package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"ringrpq"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/triples"
	"ringrpq/internal/workload"
)

// This file is the live-update benchmark behind `rpqbench -updates`
// (BENCH_PR5.json): how much does an unflushed overlay cost reads, how
// fast do updates apply, and how long is the compaction swap pause.
//
// Phases:
//
//  1. static     — replay the Table 1 query log on the clean ring;
//  2. fills      — apply synthetic update batches (from the workload
//     package's interleaved generator) until the overlay reaches 1%,
//     5% and 10% of the completed triple count, replaying the same
//     log at each level (automatic compaction disabled so fills are
//     exact) and reporting the latency ratio against phase 1;
//  3. interleave — replay a mixed read/write stream, timing reads
//     while writes land between them;
//  4. swap       — Flush() the dirty overlay, reporting the rebuild
//     wall time and the swap critical-section pause, then replay the
//     log once more on the compacted ring (sanity: back to ~static).

// updateReport is the BENCH_PR5.json schema.
type updateReport struct {
	Bench      string          `json:"bench"`
	Config     benchConfig     `json:"config"`
	Static     modeStats       `json:"static"`
	Fills      []fillStats     `json:"fills"`
	Interleave interleaveStats `json:"interleave"`
	Swap       swapStats       `json:"swap"`
	PostSwap   modeStats       `json:"post_swap"`
}

type fillStats struct {
	// Fill is the overlay weight as a fraction of the completed triple
	// count; OverlayEdges/Tombstones are the absolute sizes.
	Fill         float64   `json:"fill"`
	OverlayEdges int       `json:"overlay_edges"`
	Tombstones   int       `json:"tombstones"`
	Reads        modeStats `json:"reads"`
	// RatioP50/RatioP95 compare against the static phase (≤ 1.5 at 10%
	// fill is the acceptance bar).
	RatioP50 float64 `json:"ratio_p50"`
	RatioP95 float64 `json:"ratio_p95"`
}

type interleaveStats struct {
	Reads          modeStats `json:"reads"`
	UpdateBatches  int       `json:"update_batches"`
	UpdateEdges    int       `json:"update_edges"`
	UpdatesPerSec  float64   `json:"updates_per_sec"`
	BatchMeanMicro float64   `json:"batch_mean_us"`
}

type swapStats struct {
	RebuildMs float64 `json:"rebuild_ms"`
	PauseUs   float64 `json:"pause_us"`
	Epoch     uint64  `json:"epoch"`
}

// buildPublicDB re-interns the generated graph through the public
// builder (updates are a DB-level feature).
func buildPublicDB(g *triples.Graph) (*ringrpq.DB, error) {
	b := ringrpq.NewBuilder()
	for _, t := range g.Triples {
		if t.P >= g.NumPreds {
			continue // completion edges are re-derived by Build
		}
		b.Add(g.Nodes.Name(t.S), g.Preds.Name(t.P), g.Nodes.Name(t.O))
	}
	return b.Build()
}

func runUpdateBench(g *triples.Graph, qs []workload.Query, timeout time.Duration, limit int, path string, cfg benchConfig) {
	db, err := buildPublicDB(g)
	if err != nil {
		fmt.Fprintf(os.Stderr, "update bench: %v\n", err)
		os.Exit(1)
	}
	db.SetCompactionThreshold(-1) // exact fills; compaction measured explicitly
	completedN := db.Stats().CompletedEdges

	opts := []ringrpq.QueryOption{ringrpq.WithLimit(limit), ringrpq.WithTimeout(timeout)}
	perQuery := map[int]time.Duration{}
	diag := os.Getenv("RPQBENCH_DIAG") != ""
	replay := func() modeStats {
		var lat []time.Duration
		timeouts := 0
		for qi, q := range qs {
			subject, object := q.Subject, q.Object
			if subject == "" {
				subject = "?x"
			}
			if object == "" {
				object = "?y"
			}
			expr := pathexpr.String(q.Expr)
			t0 := time.Now()
			err := db.QueryFunc(subject, expr, object, func(ringrpq.Solution) bool { return true }, opts...)
			d := time.Since(t0)
			if errors.Is(err, ringrpq.ErrTimeout) {
				timeouts++
				continue
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "update bench: %s: %v\n", q, err)
				continue
			}
			if diag {
				if base, ok := perQuery[qi]; !ok {
					perQuery[qi] = d
				} else if d > 4*base && d > 2*time.Millisecond {
					fmt.Fprintf(os.Stderr, "DIAG slow %6.2fx %8v (base %8v) %s [%s]\n",
						float64(d)/float64(base), d, base, q, q.Pattern)
				}
			}
			lat = append(lat, d)
		}
		return summarize(lat, timeouts)
	}

	conv := func(ts []workload.UpdateTriple) []ringrpq.Triple {
		out := make([]ringrpq.Triple, len(ts))
		for i, t := range ts {
			out[i] = ringrpq.Triple{Subject: t.S, Predicate: t.P, Object: t.O}
		}
		return out
	}

	rep := updateReport{Bench: "live-updates", Config: cfg}

	// Phase 1: clean ring, with one warm-up pass for compile caches.
	replay()
	rep.Static = replay()
	fmt.Printf("update bench: static reads p50=%.0fµs p95=%.0fµs (%d timeouts)\n",
		rep.Static.P50us, rep.Static.P95us, rep.Static.Timeouts)

	// Phase 2: fills from the interleaved generator's update batches.
	updates := workload.GenerateMixed(g, workload.MixedConfig{
		Seed: cfg.Seed + 7, Total: 4096, WriteRatio: 1.0, BatchSize: 64, DeleteFrac: 0.15,
	})
	next := 0
	applyUntil := func(weight int) {
		for next < len(updates) {
			st := db.UpdateStats()
			if st.OverlayEdges+st.Tombstones >= weight {
				return
			}
			op := updates[next]
			next++
			if _, err := db.Apply(conv(op.Adds), conv(op.Dels)); err != nil {
				fmt.Fprintf(os.Stderr, "update bench: apply: %v\n", err)
				os.Exit(1)
			}
		}
	}
	for _, fill := range []float64{0.01, 0.05, 0.10} {
		applyUntil(int(fill * float64(completedN)))
		st := db.UpdateStats()
		if prof := os.Getenv("RPQBENCH_CPUPROFILE"); prof != "" && fill == 0.10 {
			f, _ := os.Create(prof)
			pprof.StartCPUProfile(f)
			replay()
			pprof.StopCPUProfile()
			f.Close()
		}
		reads := replay()
		fs := fillStats{
			Fill:         fill,
			OverlayEdges: st.OverlayEdges,
			Tombstones:   st.Tombstones,
			Reads:        reads,
		}
		if rep.Static.P50us > 0 {
			fs.RatioP50 = reads.P50us / rep.Static.P50us
		}
		if rep.Static.P95us > 0 {
			fs.RatioP95 = reads.P95us / rep.Static.P95us
		}
		rep.Fills = append(rep.Fills, fs)
		fmt.Printf("update bench: %2.0f%% fill (%d edges, %d tombstones): p50=%.0fµs (%.2fx) p95=%.0fµs (%.2fx)\n",
			fill*100, st.OverlayEdges, st.Tombstones, reads.P50us, fs.RatioP50, reads.P95us, fs.RatioP95)
	}

	// Phase 3: interleaved reads and writes on the dirty database.
	mixed := workload.GenerateMixed(g, workload.MixedConfig{
		Seed: cfg.Seed + 11, Total: len(qs), WriteRatio: 0.2, BatchSize: 16, DeleteFrac: 0.2,
	})
	var lat []time.Duration
	timeouts, batches, edges := 0, 0, 0
	var updTotal time.Duration
	for _, op := range mixed {
		if op.IsUpdate() {
			t0 := time.Now()
			if _, err := db.Apply(conv(op.Adds), conv(op.Dels)); err != nil {
				fmt.Fprintf(os.Stderr, "update bench: apply: %v\n", err)
				os.Exit(1)
			}
			updTotal += time.Since(t0)
			batches++
			edges += len(op.Adds) + len(op.Dels)
			continue
		}
		q := *op.Query
		subject, object := q.Subject, q.Object
		if subject == "" {
			subject = "?x"
		}
		if object == "" {
			object = "?y"
		}
		t0 := time.Now()
		err := db.QueryFunc(subject, pathexpr.String(q.Expr), object, func(ringrpq.Solution) bool { return true }, opts...)
		d := time.Since(t0)
		if errors.Is(err, ringrpq.ErrTimeout) {
			timeouts++
		} else if err == nil {
			lat = append(lat, d)
		}
	}
	rep.Interleave = interleaveStats{
		Reads:         summarize(lat, timeouts),
		UpdateBatches: batches,
		UpdateEdges:   edges,
	}
	if updTotal > 0 {
		rep.Interleave.UpdatesPerSec = float64(edges) / updTotal.Seconds()
		rep.Interleave.BatchMeanMicro = float64(updTotal.Microseconds()) / float64(batches)
	}
	fmt.Printf("update bench: interleaved reads p50=%.0fµs; %d batches (%d edges) at %.0f edges/s\n",
		rep.Interleave.Reads.P50us, batches, edges, rep.Interleave.UpdatesPerSec)

	// Phase 4: compaction swap.
	t0 := time.Now()
	if err := db.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "update bench: flush: %v\n", err)
		os.Exit(1)
	}
	flushWall := time.Since(t0)
	st := db.UpdateStats()
	rep.Swap = swapStats{
		RebuildMs: float64(st.LastCompaction.Microseconds()) / 1e3,
		PauseUs:   float64(st.LastSwapPause.Microseconds()),
		Epoch:     st.Epoch,
	}
	replay()
	rep.PostSwap = replay()
	fmt.Printf("update bench: flush took %v (rebuild %.1fms, swap pause %.0fµs); post-swap reads p50=%.0fµs\n",
		flushWall, rep.Swap.RebuildMs, rep.Swap.PauseUs, rep.PostSwap.P50us)

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "update bench: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "update bench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "update bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("update bench: wrote %s\n", path)
}
