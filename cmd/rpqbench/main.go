// Command rpqbench regenerates the paper's evaluation (§5): it builds a
// synthetic Wikidata-shaped graph, indexes it with the ring and the three
// baseline systems, generates a query log with the Table 1 pattern mix,
// runs every query under a timeout and result cap, and prints Table 1,
// Table 2 and the Fig. 8 per-pattern distributions.
//
// Usage:
//
//	rpqbench [-nodes N] [-edges N] [-preds N] [-queries N]
//	         [-timeout D] [-limit N] [-seed N]
//	         [-systems ring,bfs,alp,rel] [-table1] [-table2] [-fig8] [-build]
//
// Without a table selector, everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ringrpq/internal/datagen"
	"ringrpq/internal/harness"
	"ringrpq/internal/ring"
	"ringrpq/internal/workload"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 20000, "graph nodes |V|")
		edges   = flag.Int("edges", 100000, "edge draws before dedup/completion")
		preds   = flag.Int("preds", 60, "base predicates |P|")
		queries = flag.Int("queries", 400, "queries in the generated log")
		timeout = flag.Duration("timeout", 5*time.Second, "per-query timeout (paper: 60s)")
		limit   = flag.Int("limit", 1000000, "result cap per query (paper: 1M)")
		seed    = flag.Int64("seed", 1, "generation seed")
		systems = flag.String("systems", "ring,bfs,alp,rel", "comma-separated systems to run")
		table1  = flag.Bool("table1", false, "print only Table 1")
		table2  = flag.Bool("table2", false, "print only Table 2")
		fig8    = flag.Bool("fig8", false, "print only Fig. 8")
		build   = flag.Bool("build", false, "print only index construction stats")
	)
	flag.Parse()
	all := !*table1 && !*table2 && !*fig8 && !*build

	fmt.Printf("generating graph: %d nodes, %d edge draws, %d predicates (seed %d)\n",
		*nodes, *edges, *preds, *seed)
	g := datagen.Generate(datagen.Config{
		Seed: *seed, Nodes: *nodes, Edges: *edges, Preds: *preds,
	})
	fmt.Printf("completed graph: %d edges, %d nodes, %d predicates (with inverses)\n\n",
		g.Len(), g.NumNodes(), g.NumCompletedPreds())

	qs := workload.Generate(g, workload.Config{Seed: *seed + 1, Total: *queries})
	if *table1 || all {
		fmt.Println(harness.RenderTable1(qs))
	}
	if *table1 && !all {
		return
	}

	var systemsToRun []harness.System
	for _, name := range strings.Split(*systems, ",") {
		start := time.Now()
		var sys harness.System
		switch strings.TrimSpace(name) {
		case "ring":
			sys = harness.NewRing(g, ring.WaveletMatrix)
		case "ringwt":
			sys = harness.NewRing(g, ring.WaveletTree)
		case "bfs":
			sys = harness.NewBFS(g)
		case "alp":
			sys = harness.NewALP(g)
		case "rel":
			sys = harness.NewRelational(g)
		default:
			fmt.Fprintf(os.Stderr, "unknown system %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("built %-12s in %8.2fs  (%7.2f bytes/edge)\n",
			sys.Name(), time.Since(start).Seconds(),
			float64(sys.SizeBytes())/float64(g.Len()))
		systemsToRun = append(systemsToRun, sys)
	}
	fmt.Println()
	if *build && !all {
		return
	}

	var reports []harness.Report
	for _, sys := range systemsToRun {
		fmt.Printf("running %d queries on %s (timeout %v, limit %d)...\n",
			len(qs), sys.Name(), *timeout, *limit)
		start := time.Now()
		rep, err := harness.Run(sys, qs, *limit, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  done in %.2fs\n", time.Since(start).Seconds())
		reports = append(reports, rep)
	}
	fmt.Println()

	if *table2 || all {
		fmt.Println(harness.RenderTable2(reports, g.Len()))
		if len(reports) >= 2 {
			for i := 1; i < len(reports); i++ {
				fmt.Printf("speedup of %s over %s: %.2fx\n",
					reports[0].System, reports[i].System,
					harness.Speedup(reports[0], reports[i]))
			}
			fmt.Println()
		}
	}
	if *fig8 || all {
		fmt.Println(harness.RenderFig8(reports))
	}
}
