// Command rpqbench regenerates the paper's evaluation (§5): it builds a
// synthetic Wikidata-shaped graph, indexes it with the ring and the three
// baseline systems, generates a query log with the Table 1 pattern mix,
// runs every query under a timeout and result cap, and prints Table 1,
// Table 2 and the Fig. 8 per-pattern distributions.
//
// Usage:
//
//	rpqbench [-nodes N] [-edges N] [-preds N] [-queries N]
//	         [-timeout D] [-limit N] [-seed N]
//	         [-systems ring,bfs,alp,rel] [-table1] [-table2] [-fig8] [-build]
//	         [-workers N] [-shards K]
//
// Without a table selector, everything is printed. With -workers N the
// query log is additionally driven through the concurrent service pool
// (N workers over the shared ring index), reporting aggregate
// throughput and per-query latency for a cold pass and a warm
// (result-cache) pass. With -shards K the log is also replayed on a
// K-shard index next to the single ring, reporting per-query latency
// overall and on the closure-heavy subset where the intra-query shard
// parallelism concentrates.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/datagen"
	"ringrpq/internal/harness"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/query"
	"ringrpq/internal/ring"
	"ringrpq/internal/service"
	"ringrpq/internal/triples"
	"ringrpq/internal/workload"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 20000, "graph nodes |V|")
		edges   = flag.Int("edges", 100000, "edge draws before dedup/completion")
		preds   = flag.Int("preds", 60, "base predicates |P|")
		queries = flag.Int("queries", 400, "queries in the generated log")
		timeout = flag.Duration("timeout", 5*time.Second, "per-query timeout (paper: 60s)")
		limit   = flag.Int("limit", 1000000, "result cap per query (paper: 1M)")
		seed    = flag.Int64("seed", 1, "generation seed")
		systems = flag.String("systems", "ring,bfs,alp,rel", "comma-separated systems to run")
		table1  = flag.Bool("table1", false, "print only Table 1")
		table2  = flag.Bool("table2", false, "print only Table 2")
		fig8    = flag.Bool("fig8", false, "print only Fig. 8")
		build   = flag.Bool("build", false, "print only index construction stats")
		workers = flag.Int("workers", 0, "also drive the log through the service pool with this many workers (0 = off)")
		shards  = flag.Int("shards", 0, "also compare single-ring vs K-shard query latency (0 = off)")
		jsonOut = flag.String("json", "", "run the batched-vs-unbatched ablation and write machine-readable results to this file (e.g. BENCH_PR3.json)")
		patOut  = flag.String("patterns", "", "run the graph-pattern workload (BGP-only vs mixed BGP+RPQ) and write machine-readable results to this file (e.g. BENCH_PR4.json)")
		updOut  = flag.String("updates", "", "run the live-update workload (read latency vs overlay fill, swap pause) and write machine-readable results to this file (e.g. BENCH_PR5.json)")
		subsOut = flag.String("subs", "", "run the standing-subscription workload (incremental delta maintenance vs full re-evaluation) and write machine-readable results to this file (e.g. BENCH_PR6.json)")
		cmpOut  = flag.String("compiled", "", "run the compiled-vs-interpreted stepper ablation plus the cross-query grouping comparison and write machine-readable results to this file (e.g. BENCH_PR7.json)")
	)
	flag.Parse()
	all := !*table1 && !*table2 && !*fig8 && !*build && *jsonOut == "" && *patOut == "" && *updOut == "" && *subsOut == "" && *cmpOut == ""

	fmt.Printf("generating graph: %d nodes, %d edge draws, %d predicates (seed %d)\n",
		*nodes, *edges, *preds, *seed)
	g := datagen.Generate(datagen.Config{
		Seed: *seed, Nodes: *nodes, Edges: *edges, Preds: *preds,
	})
	fmt.Printf("completed graph: %d edges, %d nodes, %d predicates (with inverses)\n\n",
		g.Len(), g.NumNodes(), g.NumCompletedPreds())

	qs := workload.Generate(g, workload.Config{Seed: *seed + 1, Total: *queries})
	if *table1 || all {
		fmt.Println(harness.RenderTable1(qs))
	}
	if *table1 && !all && *workers == 0 {
		return
	}

	var systemsToRun []harness.System
	systemNames := strings.Split(*systems, ",")
	if !(*build || *table2 || *fig8 || all) {
		// Only the service-pool section remains; it builds just the
		// ring itself rather than every system in -systems.
		systemNames = nil
	}
	for _, name := range systemNames {
		start := time.Now()
		var sys harness.System
		switch strings.TrimSpace(name) {
		case "ring":
			sys = harness.NewRing(g, ring.WaveletMatrix)
		case "ringwt":
			sys = harness.NewRing(g, ring.WaveletTree)
		case "bfs":
			sys = harness.NewBFS(g)
		case "alp":
			sys = harness.NewALP(g)
		case "rel":
			sys = harness.NewRelational(g)
		default:
			fmt.Fprintf(os.Stderr, "unknown system %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("built %-12s in %8.2fs  (%7.2f bytes/edge)\n",
			sys.Name(), time.Since(start).Seconds(),
			float64(sys.SizeBytes())/float64(g.Len()))
		systemsToRun = append(systemsToRun, sys)
	}
	fmt.Println()

	if *table2 || *fig8 || all {
		var reports []harness.Report
		for _, sys := range systemsToRun {
			fmt.Printf("running %d queries on %s (timeout %v, limit %d)...\n",
				len(qs), sys.Name(), *timeout, *limit)
			start := time.Now()
			rep, err := harness.Run(sys, qs, *limit, *timeout)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  done in %.2fs\n", time.Since(start).Seconds())
			reports = append(reports, rep)
		}
		fmt.Println()

		if *table2 || all {
			fmt.Println(harness.RenderTable2(reports, g.Len()))
			if len(reports) >= 2 {
				for i := 1; i < len(reports); i++ {
					fmt.Printf("speedup of %s over %s: %.2fx\n",
						reports[0].System, reports[i].System,
						harness.Speedup(reports[0], reports[i]))
				}
				fmt.Println()
			}
		}
		if *fig8 || all {
			fmt.Println(harness.RenderFig8(reports))
		}
	}

	if *workers > 0 {
		ringSys := findRing(systemsToRun)
		if ringSys == nil {
			fmt.Println("building Ring for the service pool...")
			ringSys = harness.NewRing(g, ring.WaveletMatrix)
		}
		runServicePool(ringSys, qs, *workers, *timeout, *limit)
	}

	if *shards > 1 {
		runShardComparison(g, qs, *shards, *timeout, *limit)
	}

	cfg := benchConfig{
		Nodes: *nodes, Edges: *edges, Preds: *preds, Queries: *queries,
		Seed: *seed, Timeout: timeout.String(), Limit: *limit,
		Env: benchEnv(),
	}

	if *jsonOut != "" {
		runBatchComparison(g, qs, *timeout, *limit, *jsonOut, cfg)
	}

	if *patOut != "" {
		runPatternBench(g, *queries, *timeout, *limit, *patOut, cfg)
	}

	if *updOut != "" {
		runUpdateBench(g, qs, *timeout, *limit, *updOut, cfg)
	}

	if *subsOut != "" {
		runSubsBench(g, qs, *timeout, *subsOut, cfg)
	}

	if *cmpOut != "" {
		w := *workers
		if w <= 0 {
			w = 4
		}
		runCompiledComparison(g, qs, *timeout, *limit, w, *cmpOut, cfg)
	}
}

// patternReport is the BENCH_PR4.json schema: the graph-pattern
// executor over the generated star/path/hybrid workload, split into
// the BGP-only subset, the mixed BGP+RPQ subset, and all.
type patternReport struct {
	Bench     string               `json:"bench"`
	Config    benchConfig          `json:"config"`
	Workloads map[string]modeStats `json:"workloads"`
}

// runPatternBench replays a generated graph-pattern log on the
// selectivity-planned LTJ+RPQ executor, reporting p50/p95 latency and
// throughput for BGP-only vs mixed BGP+RPQ patterns, and writes the
// JSON report. Each pattern is measured as the best of three runs
// after a warm-up pass (planner statistics and automata are shared, so
// neither subset pays one-time construction).
func runPatternBench(g *triples.Graph, total int, timeout time.Duration, limit int, path string, cfg benchConfig) {
	fmt.Printf("graph-pattern workload: %d patterns, BGP-only vs mixed BGP+RPQ (timeout %v, limit %d)\n",
		total, timeout, limit)
	pqs := workload.GeneratePatterns(g, workload.PatternConfig{Seed: cfg.Seed + 2, Total: total})
	x := query.NewExec(g, ring.New(g, ring.WaveletMatrix), nil)

	type subset struct {
		lat      []time.Duration
		timeouts int
	}
	subsets := map[string]*subset{"all": {}, "bgp": {}, "mixed": {}}
	skipped := 0
	for _, pq := range pqs {
		q, err := query.Parse(pq.Text)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pattern workload: %q: %v\n", pq.Text, err)
			os.Exit(1)
		}
		opts := query.Options{Limit: limit, Timeout: timeout}
		run := func() (time.Duration, bool, bool) {
			t0 := time.Now()
			err := x.Run(q, opts, func(query.Binding) bool { return true })
			d := time.Since(t0)
			if errors.Is(err, query.ErrTimeout) {
				return d, true, false
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "pattern workload: %q: %v\n", pq.Text, err)
				return d, false, true
			}
			return d, false, false
		}
		run() // warm-up: planner stats, automata, mask arrays
		best := time.Duration(1<<63 - 1)
		completed, skip := 0, false
		for rep := 0; rep < 3; rep++ {
			d, to, sk := run()
			if sk {
				skip = true
				break
			}
			if to {
				continue // a transiently-slow rep must not discard a measured best
			}
			completed++
			if d < best {
				best = d
			}
			if d > 250*time.Millisecond {
				break
			}
		}
		if skip {
			skipped++
			continue
		}
		timedOut := completed == 0
		names := []string{"all", "bgp"}
		if pq.HasRPQ {
			names[1] = "mixed"
		}
		for _, name := range names {
			s := subsets[name]
			if timedOut {
				s.timeouts++
			} else {
				s.lat = append(s.lat, best)
			}
		}
	}
	if skipped > 0 {
		fmt.Printf("  %d patterns skipped on evaluation errors\n", skipped)
	}

	report := patternReport{
		Bench:     "graph-pattern executor: selectivity-planned LTJ+RPQ pipeline (PR4)",
		Config:    cfg,
		Workloads: map[string]modeStats{},
	}
	for _, name := range []string{"all", "bgp", "mixed"} {
		s := subsets[name]
		st := summarize(s.lat, s.timeouts)
		report.Workloads[name] = st
		fmt.Printf("  %-6s %4d patterns  p50 %8.0fµs  p95 %8.0fµs  mean %8.0fµs  %8.1f q/s  timeouts %d\n",
			name, st.Queries, st.P50us, st.P95us, st.MeanUs, st.QPS, st.Timeouts)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "encoding %s: %v\n", path, err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s\n", path)
}

// benchConfig records the generation parameters in the JSON report so a
// benchmark run is reproducible from the file alone.
type benchConfig struct {
	Nodes   int     `json:"nodes"`
	Edges   int     `json:"edges"`
	Preds   int     `json:"preds"`
	Queries int     `json:"queries"`
	Seed    int64   `json:"seed"`
	Timeout string  `json:"timeout"`
	Limit   int     `json:"limit"`
	Env     envInfo `json:"env"`
}

// envInfo stamps the machine and build a report came from, so numbers
// from different hosts or commits are never compared blindly.
type envInfo struct {
	Time       string `json:"time"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Commit     string `json:"commit,omitempty"`
}

// benchEnv gathers the environment stamp; the CPU model and git commit
// are best-effort (absent on unsupported platforms or non-checkouts).
func benchEnv() envInfo {
	e := envInfo{
		Time:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if b, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					e.CPUModel = strings.TrimSpace(v)
					break
				}
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		e.Commit = strings.TrimSpace(string(out))
	}
	return e
}

// modeStats summarises one evaluation mode over one workload subset.
type modeStats struct {
	Queries  int     `json:"queries"`
	Timeouts int     `json:"timeouts"`
	P50us    float64 `json:"p50_us"`
	P95us    float64 `json:"p95_us"`
	MeanUs   float64 `json:"mean_us"`
	TotalMs  float64 `json:"total_ms"`
	QPS      float64 `json:"qps"`
}

// workloadReport pairs both modes over one subset with their speedups.
// Mismatches counts queries whose batched and unbatched result counts
// disagreed; any nonzero value means the run is invalid (the tool also
// exits nonzero), so a committed report provably passed the cross-check.
type workloadReport struct {
	Batched        modeStats `json:"batched"`
	Unbatched      modeStats `json:"unbatched"`
	SpeedupTotal   float64   `json:"speedup_total"`
	SpeedupGeomean float64   `json:"speedup_geomean"`
	Mismatches     int       `json:"mismatches"`
}

// benchReport is the BENCH_PR3.json schema: the frontier-batching
// ablation over the standard Table 1 workload, split into the
// closure-heavy subset (expressions with * or +), the rest, and all.
type benchReport struct {
	Bench     string                    `json:"bench"`
	Config    benchConfig               `json:"config"`
	Workloads map[string]workloadReport `json:"workloads"`
}

func summarize(lat []time.Duration, timeouts int) modeStats {
	st := modeStats{Queries: len(lat) + timeouts, Timeouts: timeouts}
	if len(lat) == 0 {
		return st
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	st.P50us = float64(sorted[len(sorted)/2].Microseconds())
	st.P95us = float64(sorted[len(sorted)*95/100].Microseconds())
	st.MeanUs = float64(total.Microseconds()) / float64(len(sorted))
	st.TotalMs = total.Seconds() * 1000 // not Milliseconds(): sub-ms subsets must not truncate to 0
	if total > 0 {
		st.QPS = float64(len(sorted)) / total.Seconds()
	}
	return st
}

// runBatchComparison replays the query log on one engine in batched and
// DisableBatching mode, reporting p50/p95 latency and throughput per
// workload subset plus total and geomean speedups, and writes the JSON
// report. Each (query, mode) is measured as the best of three runs
// (one warm-up run per query first, so neither mode pays the one-time
// Glushkov compilation), and both modes must agree on every result
// count.
func runBatchComparison(g *triples.Graph, qs []workload.Query, timeout time.Duration, limit int, path string, cfg benchConfig) {
	ids := func(s pathexpr.Sym) (uint32, bool) { return g.PredID(s.Name, s.Inverse) }
	fmt.Printf("batching ablation: %d queries, batched vs -DisableBatching (timeout %v, limit %d)\n",
		len(qs), timeout, limit)
	eng := core.NewEngine(ring.New(g, ring.WaveletMatrix), ids)

	type outcome struct {
		d        time.Duration
		n        int
		timedOut bool
		skip     bool
	}
	run := func(q workload.Query, disable bool, reps int) outcome {
		cq := core.Query{Subject: core.Variable, Object: core.Variable, Expr: q.Expr}
		if q.Subject != "" {
			id, ok := g.Nodes.Lookup(q.Subject)
			if !ok {
				return outcome{skip: true}
			}
			cq.Subject = int64(id)
		}
		if q.Object != "" {
			id, ok := g.Nodes.Lookup(q.Object)
			if !ok {
				return outcome{skip: true}
			}
			cq.Object = int64(id)
		}
		opts := core.Options{Limit: limit, Timeout: timeout, DisableBatching: disable}
		best := outcome{d: time.Duration(1<<63 - 1)}
		for rep := 0; rep < reps; rep++ {
			n := 0
			t0 := time.Now()
			_, err := eng.Eval(context.Background(), cq, opts, func(uint32, uint32) bool { n++; return true })
			d := time.Since(t0)
			if errors.Is(err, core.ErrTimeout) {
				return outcome{timedOut: true}
			} else if err != nil {
				fmt.Fprintf(os.Stderr, "batching ablation: %s: %v\n", q, err)
				return outcome{skip: true}
			}
			if d < best.d {
				best = outcome{d: d, n: n}
			}
			// Long queries are noise-free; don't triple their cost.
			if d > 250*time.Millisecond {
				break
			}
		}
		return best
	}

	type subset struct {
		latB, latU           []time.Duration
		timeoutsB, timeoutsU int
		logSpeedups          float64
		pairs, mismatches    int
	}
	subsets := map[string]*subset{"all": {}, "closure": {}, "other": {}}
	for _, q := range qs {
		// Warm the shared compilation memo so the first measured run of
		// either mode excludes automaton construction.
		run(q, true, 1)
		b := run(q, false, 3)
		u := run(q, true, 3)
		if b.skip || u.skip {
			continue
		}
		names := []string{"all", "other"}
		if strings.ContainsAny(q.Pattern, "*+") {
			names[1] = "closure"
		}
		for _, name := range names {
			s := subsets[name]
			if b.timedOut {
				s.timeoutsB++
			} else {
				s.latB = append(s.latB, b.d)
			}
			if u.timedOut {
				s.timeoutsU++
			} else {
				s.latU = append(s.latU, u.d)
			}
			if b.timedOut || u.timedOut {
				continue
			}
			if b.n != u.n {
				s.mismatches++
				fmt.Fprintf(os.Stderr, "batching ablation: %s: batched %d results, unbatched %d\n", q, b.n, u.n)
				continue
			}
			if b.d > 0 && u.d > 0 {
				s.logSpeedups += math.Log(float64(u.d) / float64(b.d))
				s.pairs++
			}
		}
	}

	report := benchReport{
		Bench:     "frontier-batched product-graph traversal (PR3)",
		Config:    cfg,
		Workloads: map[string]workloadReport{},
	}
	for _, name := range []string{"all", "closure", "other"} {
		s := subsets[name]
		wr := workloadReport{
			Batched:   summarize(s.latB, s.timeoutsB),
			Unbatched: summarize(s.latU, s.timeoutsU),
		}
		if wr.Batched.TotalMs > 0 {
			wr.SpeedupTotal = wr.Unbatched.TotalMs / wr.Batched.TotalMs
		}
		if s.pairs > 0 {
			wr.SpeedupGeomean = math.Exp(s.logSpeedups / float64(s.pairs))
		}
		wr.Mismatches = s.mismatches
		report.Workloads[name] = wr
		fmt.Printf("  %-8s %4d queries  batched p50 %8.0fµs p95 %8.0fµs  unbatched p50 %8.0fµs p95 %8.0fµs  speedup total %.2fx geomean %.2fx\n",
			name, wr.Batched.Queries, wr.Batched.P50us, wr.Batched.P95us,
			wr.Unbatched.P50us, wr.Unbatched.P95us, wr.SpeedupTotal, wr.SpeedupGeomean)
		if s.mismatches > 0 {
			fmt.Printf("  %-8s RESULT MISMATCHES: %d\n", name, s.mismatches)
		}
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "encoding %s: %v\n", path, err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s\n", path)
	if n := subsets["all"].mismatches; n > 0 {
		fmt.Fprintf(os.Stderr, "batching ablation: %d result mismatches — report is invalid\n", n)
		os.Exit(1)
	}
}

// runShardComparison replays the query log on the single-ring engine
// and on a K-shard sharded engine, verifying the result counts agree
// and reporting latency side by side — overall and on the
// closure-heavy subset (expressions with * or +), where the
// cooperative per-level shard fan-out has the most work to split.
func runShardComparison(g *triples.Graph, qs []workload.Query, k int, timeout time.Duration, limit int) {
	ids := func(s pathexpr.Sym) (uint32, bool) { return g.PredID(s.Name, s.Inverse) }
	fmt.Printf("shard comparison: single ring vs %d shards, %d queries (timeout %v, limit %d)\n",
		k, len(qs), timeout, limit)
	t0 := time.Now()
	r := ring.New(g, ring.WaveletMatrix)
	singleBuild := time.Since(t0)
	t0 = time.Now()
	set := ring.NewShardSet(g, k, nil, ring.WaveletMatrix)
	shardBuild := time.Since(t0)
	fmt.Printf("  build: single %.2fs, %d-shard %.2fs (sub-rings built in parallel)\n",
		singleBuild.Seconds(), k, shardBuild.Seconds())

	single := core.NewEngine(r, ids)
	sharded := core.NewShardedEngine(set, ids)

	type class struct {
		name                string
		singleNS, shardedNS time.Duration
		n                   int
	}
	classes := map[bool]*class{
		false: {name: "other"},
		true:  {name: "closure-heavy"},
	}
	run := func(e core.Evaluator, q workload.Query) (n int, timedOut bool, d time.Duration) {
		sid, oid := int64(core.Variable), int64(core.Variable)
		if q.Subject != "" {
			id, ok := g.Nodes.Lookup(q.Subject)
			if !ok {
				return 0, false, 0
			}
			sid = int64(id)
		}
		if q.Object != "" {
			id, ok := g.Nodes.Lookup(q.Object)
			if !ok {
				return 0, false, 0
			}
			oid = int64(id)
		}
		t0 := time.Now()
		_, err := e.Eval(context.Background(), core.Query{Subject: sid, Expr: q.Expr, Object: oid},
			core.Options{Limit: limit, Timeout: timeout},
			func(uint32, uint32) bool { n++; return true })
		if errors.Is(err, core.ErrTimeout) {
			timedOut = true
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "shard comparison: %s: %v\n", q, err)
		}
		return n, timedOut, time.Since(t0)
	}
	mismatches, timeouts := 0, 0
	for _, q := range qs {
		closureHeavy := strings.ContainsAny(q.Pattern, "*+")
		c := classes[closureHeavy]
		n1, to1, d1 := run(single, q)
		nK, toK, dK := run(sharded, q)
		switch {
		case to1 || toK:
			// A timed-out engine returns a legitimately partial count;
			// only completed runs are comparable.
			timeouts++
		case n1 != nK:
			mismatches++
			fmt.Fprintf(os.Stderr, "shard comparison: %s: single %d results, sharded %d\n", q, n1, nK)
		}
		c.singleNS += d1
		c.shardedNS += dK
		c.n++
	}
	if timeouts > 0 {
		fmt.Printf("  %d queries timed out on at least one engine (excluded from the mismatch check)\n", timeouts)
	}
	if mismatches > 0 {
		fmt.Printf("  RESULT MISMATCHES: %d\n", mismatches)
	}
	total := &class{name: "all"}
	for _, c := range classes {
		total.singleNS += c.singleNS
		total.shardedNS += c.shardedNS
		total.n += c.n
	}
	for _, c := range []*class{classes[true], classes[false], total} {
		if c.n == 0 {
			continue
		}
		speedup := float64(c.singleNS) / float64(c.shardedNS)
		fmt.Printf("  %-14s %5d queries   single %10s   %d-shard %10s   speedup %.2fx\n",
			c.name, c.n,
			(c.singleNS / time.Duration(c.n)).Round(time.Microsecond),
			k,
			(c.shardedNS / time.Duration(c.n)).Round(time.Microsecond),
			speedup)
	}
}

// findRing picks the ring system out of the -systems selection.
func findRing(systems []harness.System) *harness.Ring {
	for _, sys := range systems {
		if r, ok := sys.(*harness.Ring); ok {
			return r
		}
	}
	return nil
}

// poolBackend adapts the (graph, ring) pair to the service worker
// interface; each clone owns a private core engine over the shared
// immutable index. It mirrors ringrpq.DB.queryNode's endpoint
// semantics ('?' prefix = variable, unknown constants = empty result)
// so pool numbers match what the public Service measures.
type poolBackend struct {
	g *triples.Graph
	r *ring.Ring
	e *core.Engine
}

func newPoolBackend(g *triples.Graph, r *ring.Ring) *poolBackend {
	return &poolBackend{g: g, r: r, e: core.NewEngine(r, func(s pathexpr.Sym) (uint32, bool) {
		return g.PredID(s.Name, s.Inverse)
	})}
}

func (b *poolBackend) Clone() service.Backend { return newPoolBackend(b.g, b.r) }

func (b *poolBackend) Eval(ctx context.Context, subject string, node pathexpr.Node, object string, limit int, timeout time.Duration, emit func(service.Solution) bool) error {
	q := core.Query{Subject: core.Variable, Object: core.Variable, Expr: node}
	if !strings.HasPrefix(subject, "?") {
		id, ok := b.g.Nodes.Lookup(subject)
		if !ok {
			return nil
		}
		q.Subject = int64(id)
	}
	if !strings.HasPrefix(object, "?") {
		id, ok := b.g.Nodes.Lookup(object)
		if !ok {
			return nil
		}
		q.Object = int64(id)
	}
	_, err := b.e.Eval(context.Background(), q, core.Options{Limit: limit, Timeout: timeout}, func(s, o uint32) bool {
		return emit(service.Solution{Subject: b.g.Nodes.Name(s), Object: b.g.Nodes.Name(o)})
	})
	return err
}

// runServicePool replays the query log through the concurrent service
// (2×workers clients) twice — a cold pass and a warm pass that hits
// the result cache — and prints aggregate throughput next to the
// per-query latency distribution.
func runServicePool(ringSys *harness.Ring, qs []workload.Query, workers int, timeout time.Duration, limit int) {
	if len(qs) == 0 {
		fmt.Println("service pool: empty query log, nothing to run")
		return
	}
	svc := service.New(newPoolBackend(ringSys.Graph(), ringSys.Ring()), service.Config{
		Workers:        workers,
		QueueDepth:     4 * workers,
		DefaultTimeout: timeout,
	})
	defer svc.Close()

	reqs := make([]service.Request, len(qs))
	for i, q := range qs {
		subject, object := q.Subject, q.Object
		if subject == "" {
			subject = "?s"
		}
		if object == "" {
			object = "?o"
		}
		reqs[i] = service.Request{
			Subject: subject, Expr: pathexpr.String(q.Expr), Object: object,
			Limit: limit, Count: true,
		}
	}

	clients := 2 * workers
	fmt.Printf("service pool: %d workers, %d clients, %d queries (timeout %v, limit %d)\n",
		workers, clients, len(reqs), timeout, limit)
	for _, pass := range []string{"cold", "warm"} {
		lat := make([]time.Duration, len(reqs))
		var next, timeouts atomic.Int64
		ctx := context.Background()
		hitsBefore := svc.Stats().Hits
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(reqs) {
						return
					}
					t0 := time.Now()
					res := svc.Count(ctx, reqs[i])
					lat[i] = time.Since(t0)
					if errors.Is(res.Err, core.ErrTimeout) {
						timeouts.Add(1)
					} else if res.Err != nil {
						fmt.Fprintf(os.Stderr, "service: query %d: %v\n", i, res.Err)
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)

		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var total time.Duration
		for _, d := range lat {
			total += d
		}
		fmt.Printf("  %-5s %8.2fs wall  %10.1f queries/sec  mean %10s  median %10s  p95 %10s  timeouts %d  cache hits %d\n",
			pass, elapsed.Seconds(), float64(len(reqs))/elapsed.Seconds(),
			total/time.Duration(len(lat)), lat[len(lat)/2], lat[len(lat)*95/100],
			timeouts.Load(), svc.Stats().Hits-hitsBefore)
	}
}
