package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/service"
	"ringrpq/internal/triples"
	"ringrpq/internal/workload"
)

// compiledWorkload pairs the compiled-stepper and interpreter modes
// over one workload subset. Mismatches counts queries whose result
// counts disagreed; nonzero invalidates the run (the tool exits 1).
type compiledWorkload struct {
	Compiled       modeStats `json:"compiled"`
	Interpreted    modeStats `json:"interpreted"`
	SpeedupTotal   float64   `json:"speedup_total"`
	SpeedupGeomean float64   `json:"speedup_geomean"`
	Mismatches     int       `json:"mismatches"`
}

// poolStats summarises one service-pool pass.
type poolStats struct {
	WallS       float64 `json:"wall_s"`
	QPS         float64 `json:"qps"`
	MeanUs      float64 `json:"mean_us"`
	P50us       float64 `json:"p50_us"`
	P95us       float64 `json:"p95_us"`
	Timeouts    int     `json:"timeouts"`
	GroupedJobs int64   `json:"grouped_jobs"`
	DedupedJobs int64   `json:"deduped_jobs"`
}

// groupingReport compares the service pool with and without
// cross-query traversal grouping under identical concurrent load.
type groupingReport struct {
	Workers   int       `json:"workers"`
	Clients   int       `json:"clients"`
	BatchSize int       `json:"batch_size"`
	Ungrouped poolStats `json:"ungrouped"`
	Grouped   poolStats `json:"grouped"`
	QPSRatio  float64   `json:"qps_ratio"`
}

// compiledReport is the BENCH_PR7.json schema: the compiled-stepper
// ablation over the Table 1 workload (split like BENCH_PR3) plus the
// cross-query grouping comparison on the concurrent pool.
type compiledReport struct {
	Bench     string                      `json:"bench"`
	Config    benchConfig                 `json:"config"`
	Workloads map[string]compiledWorkload `json:"workloads"`
	Grouping  groupingReport              `json:"grouping"`
}

// runCompiledComparison replays the query log on one engine with the
// compilation tier forced on (CompileEager) and forced off
// (DisableCompiled), reporting per-subset latency and speedups, then
// drives the log through the service pool with and without cross-query
// traversal grouping. Each (query, mode) is measured as the best of
// three runs after a shared warm-up (so neither mode pays one-time
// automaton construction), and the modes must agree on every result
// count. The JSON report is written to path.
func runCompiledComparison(g *triples.Graph, qs []workload.Query, timeout time.Duration, limit int, workers int, path string, cfg benchConfig) {
	ids := func(s pathexpr.Sym) (uint32, bool) { return g.PredID(s.Name, s.Inverse) }
	fmt.Printf("compiled-stepper ablation: %d queries, CompileEager vs DisableCompiled (timeout %v, limit %d)\n",
		len(qs), timeout, limit)
	r := ring.New(g, ring.WaveletMatrix)
	eng := core.NewEngine(r, ids)

	type outcome struct {
		d        time.Duration
		n        int
		timedOut bool
		skip     bool
	}
	run := func(q workload.Query, interp bool, reps int) outcome {
		cq := core.Query{Subject: core.Variable, Object: core.Variable, Expr: q.Expr}
		if q.Subject != "" {
			id, ok := g.Nodes.Lookup(q.Subject)
			if !ok {
				return outcome{skip: true}
			}
			cq.Subject = int64(id)
		}
		if q.Object != "" {
			id, ok := g.Nodes.Lookup(q.Object)
			if !ok {
				return outcome{skip: true}
			}
			cq.Object = int64(id)
		}
		opts := core.Options{Limit: limit, Timeout: timeout, CompileEager: !interp, DisableCompiled: interp}
		best := outcome{d: time.Duration(1<<63 - 1)}
		for rep := 0; rep < reps; rep++ {
			n := 0
			t0 := time.Now()
			_, err := eng.Eval(context.Background(), cq, opts, func(uint32, uint32) bool { n++; return true })
			d := time.Since(t0)
			if errors.Is(err, core.ErrTimeout) {
				return outcome{timedOut: true}
			} else if err != nil {
				fmt.Fprintf(os.Stderr, "compiled ablation: %s: %v\n", q, err)
				return outcome{skip: true}
			}
			if d < best.d {
				best = outcome{d: d, n: n}
			}
			// Long queries are noise-free; don't triple their cost.
			if d > 250*time.Millisecond {
				break
			}
		}
		return best
	}

	type subset struct {
		latC, latI           []time.Duration
		timeoutsC, timeoutsI int
		logSpeedups          float64
		pairs, mismatches    int
	}
	subsets := map[string]*subset{"all": {}, "closure": {}, "other": {}}
	for _, q := range qs {
		// Warm the shared memo eagerly so the first measured run of
		// either mode excludes automaton and table construction.
		run(q, false, 1)
		c := run(q, false, 3)
		i := run(q, true, 3)
		if c.skip || i.skip {
			continue
		}
		names := []string{"all", "other"}
		if strings.ContainsAny(q.Pattern, "*+") {
			names[1] = "closure"
		}
		for _, name := range names {
			s := subsets[name]
			if c.timedOut {
				s.timeoutsC++
			} else {
				s.latC = append(s.latC, c.d)
			}
			if i.timedOut {
				s.timeoutsI++
			} else {
				s.latI = append(s.latI, i.d)
			}
			if c.timedOut || i.timedOut {
				continue
			}
			if c.n != i.n {
				s.mismatches++
				fmt.Fprintf(os.Stderr, "compiled ablation: %s: compiled %d results, interpreted %d\n", q, c.n, i.n)
				continue
			}
			if c.d > 0 && i.d > 0 {
				s.logSpeedups += math.Log(float64(i.d) / float64(c.d))
				s.pairs++
			}
		}
	}

	report := compiledReport{
		Bench:     "compiled Glushkov steppers + cross-query traversal grouping (PR7)",
		Config:    cfg,
		Workloads: map[string]compiledWorkload{},
	}
	for _, name := range []string{"all", "closure", "other"} {
		s := subsets[name]
		wr := compiledWorkload{
			Compiled:    summarize(s.latC, s.timeoutsC),
			Interpreted: summarize(s.latI, s.timeoutsI),
		}
		if wr.Compiled.TotalMs > 0 {
			wr.SpeedupTotal = wr.Interpreted.TotalMs / wr.Compiled.TotalMs
		}
		if s.pairs > 0 {
			wr.SpeedupGeomean = math.Exp(s.logSpeedups / float64(s.pairs))
		}
		wr.Mismatches = s.mismatches
		report.Workloads[name] = wr
		fmt.Printf("  %-8s %4d queries  compiled p50 %8.0fµs p95 %8.0fµs  interpreted p50 %8.0fµs p95 %8.0fµs  speedup total %.2fx geomean %.2fx\n",
			name, wr.Compiled.Queries, wr.Compiled.P50us, wr.Compiled.P95us,
			wr.Interpreted.P50us, wr.Interpreted.P95us, wr.SpeedupTotal, wr.SpeedupGeomean)
		if s.mismatches > 0 {
			fmt.Printf("  %-8s RESULT MISMATCHES: %d\n", name, s.mismatches)
		}
	}

	report.Grouping = runGroupingComparison(g, r, qs, timeout, limit, workers)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "encoding %s: %v\n", path, err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s\n", path)
	if n := subsets["all"].mismatches; n > 0 {
		fmt.Fprintf(os.Stderr, "compiled ablation: %d result mismatches — report is invalid\n", n)
		os.Exit(1)
	}
}

// EvalGroup implements service.GroupBackend over the pool backend's
// single engine, letting the rpqbench service pool opt in to shared
// traversals exactly like ringrpq.DB's backend does.
func (b *poolBackend) EvalGroup(reqs []service.GroupRequest) []error {
	errs := make([]error, len(reqs))
	gqs := make([]*core.GroupQuery, 0, len(reqs))
	idx := make([]int, 0, len(reqs))
	for i, req := range reqs {
		q := core.Query{Subject: core.Variable, Object: core.Variable, Expr: req.Expr}
		if !strings.HasPrefix(req.Subject, "?") {
			id, ok := b.g.Nodes.Lookup(req.Subject)
			if !ok {
				continue // unknown endpoint: no solutions, nil error
			}
			q.Subject = int64(id)
		}
		if !strings.HasPrefix(req.Object, "?") {
			id, ok := b.g.Nodes.Lookup(req.Object)
			if !ok {
				continue
			}
			q.Object = int64(id)
		}
		emit := req.Emit
		gqs = append(gqs, &core.GroupQuery{
			Query: q,
			Opts:  core.Options{Limit: req.Limit, Timeout: req.Timeout},
			Emit: func(s, o uint32) bool {
				return emit(service.Solution{Subject: b.g.Nodes.Name(s), Object: b.g.Nodes.Name(o)})
			},
		})
		idx = append(idx, i)
	}
	if len(gqs) == 0 {
		return errs
	}
	b.e.EvalGroup(gqs)
	for j, gq := range gqs {
		errs[idx[j]] = gq.Err
	}
	return errs
}

// runGroupingComparison drives the query log through the concurrent
// service pool twice — cross-query traversal grouping off, then on —
// under identical load, with the result cache disabled so both passes
// measure evaluation rather than caching. The request stream is
// zipf-sampled from the distinct query log (seeded, identical across
// both passes): real query logs are heavily skewed toward a small hot
// set, and the skew is what gives the grouping worker identical
// in-flight queries to coalesce and compatible ones to share descents
// with. Clients submit through
// service.Batch in chunks of GroupMax: Batch enqueues a
// whole chunk before waiting, so queued work exists for the grouping
// workers to drain even on a single-core host (individual blocking
// Count calls ping-pong with the workers there and the queue never
// backs up). GroupMax is raised to 32 for both passes — the wider
// drain window is what lets the grouping worker catch the stream's
// duplicates in flight. The per-request deadline is 8× the query
// timeout: the pool runs saturated for the whole pass, so queue wait
// dominates the budget, and jobs dying in the queue would measure
// timeout churn rather than throughput. Each service gets one untimed
// warm-up pass (compilation memos, scratch growth) before its measured
// pass. Reported latency is per chunk: the time its submitting client
// waited for the whole chunk, identical in shape across both modes.
func runGroupingComparison(g *triples.Graph, r *ring.Ring, qs []workload.Query, timeout time.Duration, limit int, workers int) groupingReport {
	const batchSize = 32 // also the services' GroupMax
	clients := 4 * workers
	rep := groupingReport{Workers: workers, Clients: clients, BatchSize: batchSize}
	if len(qs) == 0 {
		return rep
	}
	reqs := make([]service.Request, len(qs))
	for i, q := range qs {
		subject, object := q.Subject, q.Object
		if subject == "" {
			subject = "?s"
		}
		if object == "" {
			object = "?o"
		}
		reqs[i] = service.Request{
			Subject: subject, Expr: pathexpr.String(q.Expr), Object: object,
			Limit: limit, Count: true,
		}
	}
	// Zipf-skewed stream over the distinct queries (s=1.1), 4 draws per
	// distinct query, fixed seed so both modes replay the same stream.
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(len(reqs)-1))
	stream := make([]service.Request, 4*len(reqs))
	for i := range stream {
		stream[i] = reqs[zipf.Uint64()]
	}
	var chunks [][]service.Request
	for i := 0; i < len(stream); i += batchSize {
		end := i + batchSize
		if end > len(stream) {
			end = len(stream)
		}
		chunks = append(chunks, stream[i:end])
	}

	fmt.Printf("  grouping: %d workers, %d clients, %d zipf-sampled requests over %d distinct queries, %d batches of ≤%d, result cache off\n",
		workers, clients, len(stream), len(reqs), len(chunks), batchSize)
	for _, grouped := range []bool{false, true} {
		svc := service.New(newPoolBackend(g, r), service.Config{
			Workers:            workers,
			QueueDepth:         clients * batchSize,
			DefaultTimeout:     8 * timeout,
			ResultCacheEntries: -1,
			ResultCacheBytes:   -1,
			GroupTraversals:    grouped,
			GroupMax:           batchSize,
		})
		for pass := 0; pass < 2; pass++ { // pass 0 warms, pass 1 measures
			lat := make([]time.Duration, len(chunks))
			var next, timeouts atomic.Int64
			ctx := context.Background()
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(chunks) {
							return
						}
						t0 := time.Now()
						results := svc.Batch(ctx, chunks[i])
						lat[i] = time.Since(t0)
						for j, res := range results {
							if errors.Is(res.Err, core.ErrTimeout) {
								timeouts.Add(1)
							} else if res.Err != nil {
								fmt.Fprintf(os.Stderr, "grouping: query %d: %v\n", i*batchSize+j, res.Err)
							}
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			if pass == 0 {
				continue
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			var total time.Duration
			for _, d := range lat {
				total += d
			}
			ps := poolStats{
				WallS:       elapsed.Seconds(),
				QPS:         float64(len(stream)) / elapsed.Seconds(),
				MeanUs:      float64(total.Microseconds()) / float64(len(lat)),
				P50us:       float64(lat[len(lat)/2].Microseconds()),
				P95us:       float64(lat[len(lat)*95/100].Microseconds()),
				Timeouts:    int(timeouts.Load()),
				GroupedJobs: svc.Stats().Grouped,
				DedupedJobs: svc.Stats().Deduped,
			}
			mode := "ungrouped"
			if grouped {
				rep.Grouped = ps
				mode = "grouped"
			} else {
				rep.Ungrouped = ps
			}
			fmt.Printf("    %-9s %8.2fs wall  %10.1f queries/sec  batch p50 %8.0fµs  p95 %8.0fµs  timeouts %d  grouped %d  deduped %d\n",
				mode, ps.WallS, ps.QPS, ps.P50us, ps.P95us, ps.Timeouts, ps.GroupedJobs, ps.DedupedJobs)
		}
		svc.Close()
	}
	if rep.Grouped.QPS > 0 && rep.Ungrouped.QPS > 0 {
		rep.QPSRatio = rep.Grouped.QPS / rep.Ungrouped.QPS
	}
	return rep
}
