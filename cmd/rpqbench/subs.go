package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"ringrpq"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/triples"
	"ringrpq/internal/workload"
)

// This file is the standing-query benchmark behind `rpqbench -subs`
// (BENCH_PR6.json): register a set of standing 2RPQ and graph-pattern
// subscriptions, replay a write-only update stream, and compare the
// per-batch delta latency of incremental maintenance against the
// full-re-evaluation baseline (StandingConfig.ForceFull) on an
// identical database and stream. Both runs reconstruct every
// subscription's result set purely from its deltas and the final sets
// must agree pair-for-pair; a committed report provably passed that
// cross-check.

// subsReport is the BENCH_PR6.json schema.
type subsReport struct {
	Bench         string      `json:"bench"`
	Config        benchConfig `json:"config"`
	Subscriptions int         `json:"subscriptions"`
	PatternSubs   int         `json:"pattern_subs"`
	Batches       int         `json:"batches"`
	BatchEdges    int         `json:"batch_edges"`
	Incremental   subsMode    `json:"incremental"`
	FullReeval    subsMode    `json:"full_reeval"`
	// SpeedupTotal is full-re-eval wall time over incremental wall
	// time for the identical stream (> 1 means incremental wins).
	SpeedupTotal float64 `json:"speedup_total"`
	SpeedupP50   float64 `json:"speedup_p50"`
	SpeedupP95   float64 `json:"speedup_p95"`
	// Mismatches counts subscriptions whose delta-reconstructed result
	// sets differ between the two modes; nonzero fails the run.
	Mismatches int `json:"mismatches"`
}

// subsMode is one mode's measurements: Latency summarises the
// per-batch delta latency (Apply return to all deltas delivered), the
// counters come from the registry.
type subsMode struct {
	Latency     modeStats `json:"latency"`
	Deltas      int64     `json:"deltas"`
	Incremental int64     `json:"incremental"`
	FullReevals int64     `json:"full_reevals"`
	Skipped     int64     `json:"skipped"`
	EvalMs      float64   `json:"eval_ms"`
}

// subsMirror reconstructs one subscription's result set from deltas.
type subsMirror struct {
	sub   *ringrpq.Subscription
	pairs map[ringrpq.Pair]bool
	rows  map[string]bool
}

func subsRowKey(row []string) string {
	var sb strings.Builder
	for _, v := range row {
		fmt.Fprintf(&sb, "%d:%s", len(v), v)
	}
	return sb.String()
}

func (m *subsMirror) drain() (deltas int64, err error) {
	for {
		d, ok, err := m.sub.TryNext()
		if err != nil {
			return deltas, err
		}
		if !ok {
			return deltas, nil
		}
		deltas++
		for _, p := range d.Added {
			m.pairs[p] = true
		}
		for _, p := range d.Removed {
			delete(m.pairs, p)
		}
		for _, row := range d.AddedRows {
			m.rows[subsRowKey(row)] = true
		}
		for _, row := range d.RemovedRows {
			delete(m.rows, subsRowKey(row))
		}
	}
}

// pickSubRequests selects standing queries from the Table 1 log whose
// current result set is small enough to maintain (the probe uses db
// read-only), plus two fixed graph patterns over the most common
// predicates.
func pickSubRequests(db *ringrpq.DB, g *triples.Graph, qs []workload.Query, n, maxResults int, timeout time.Duration) (reqs []ringrpq.SubscribeRequest, patterns int) {
	for _, q := range qs {
		if len(reqs) >= n {
			break
		}
		subject, object := q.Subject, q.Object
		if subject == "" {
			subject = "?x"
		}
		if object == "" {
			object = "?y"
		}
		expr := pathexpr.String(q.Expr)
		count := 0
		err := db.QueryFunc(subject, expr, object,
			func(ringrpq.Solution) bool { count++; return count <= maxResults },
			ringrpq.WithLimit(maxResults+1), ringrpq.WithTimeout(timeout))
		if err != nil || count > maxResults {
			continue
		}
		reqs = append(reqs, ringrpq.SubscribeRequest{Subject: subject, Object: object, Expr: expr})
	}
	if g.NumPreds >= 2 {
		p0, p1 := g.Preds.Name(0), g.Preds.Name(1)
		reqs = append(reqs,
			ringrpq.SubscribeRequest{Pattern: fmt.Sprintf("?x %s ?y . ?y %s ?z", p0, p0)},
			ringrpq.SubscribeRequest{Pattern: fmt.Sprintf("?x %s ?y . ?y %s ?z", p0, p1)},
		)
		patterns = 2
	}
	return reqs, patterns
}

// runSubsMode replays the update stream on one database with the given
// standing configuration, returning per-batch delta latencies and the
// final delta-reconstructed result sets.
func runSubsMode(g *triples.Graph, cfg ringrpq.StandingConfig, reqs []ringrpq.SubscribeRequest, ops []workload.MixedOp) ([]*subsMirror, subsMode, error) {
	db, err := buildPublicDB(g)
	if err != nil {
		return nil, subsMode{}, err
	}
	db.SetCompactionThreshold(-1)
	db.SetStandingConfig(cfg)

	conv := func(ts []workload.UpdateTriple) []ringrpq.Triple {
		out := make([]ringrpq.Triple, len(ts))
		for i, t := range ts {
			out[i] = ringrpq.Triple{Subject: t.S, Predicate: t.P, Object: t.O}
		}
		return out
	}

	var mirrors []*subsMirror
	for _, req := range reqs {
		req.Snapshot = true
		sub, err := db.Subscribe(req)
		if err != nil {
			return nil, subsMode{}, fmt.Errorf("subscribe: %w", err)
		}
		m := &subsMirror{sub: sub, pairs: map[ringrpq.Pair]bool{}, rows: map[string]bool{}}
		if _, err := m.drain(); err != nil {
			return nil, subsMode{}, fmt.Errorf("baseline drain: %w", err)
		}
		mirrors = append(mirrors, m)
	}

	var lat []time.Duration
	var deltas int64
	for _, op := range ops {
		if !op.IsUpdate() {
			continue
		}
		if _, err := db.Apply(conv(op.Adds), conv(op.Dels)); err != nil {
			return nil, subsMode{}, fmt.Errorf("apply: %w", err)
		}
		t0 := time.Now()
		db.SyncStanding()
		lat = append(lat, time.Since(t0))
		for _, m := range mirrors {
			n, err := m.drain()
			if err != nil {
				return nil, subsMode{}, fmt.Errorf("drain: %w", err)
			}
			deltas += n
		}
	}

	st := db.StandingStats()
	mode := subsMode{
		Latency:     summarize(lat, 0),
		Deltas:      deltas,
		Incremental: st.Incremental,
		FullReevals: st.FullReevals,
		Skipped:     st.Skipped,
		EvalMs:      float64(st.EvalNS) / 1e6,
	}
	for _, m := range mirrors {
		m.sub.Close()
	}
	return mirrors, mode, nil
}

func runSubsBench(g *triples.Graph, qs []workload.Query, timeout time.Duration, path string, cfg benchConfig) {
	// A throwaway database answers the result-size probes that pick
	// maintainable subscriptions.
	probe, err := buildPublicDB(g)
	if err != nil {
		fmt.Fprintf(os.Stderr, "subs bench: %v\n", err)
		os.Exit(1)
	}
	reqs, patterns := pickSubRequests(probe, g, qs, 12, 20000, timeout)
	if len(reqs) == 0 {
		fmt.Fprintln(os.Stderr, "subs bench: no maintainable subscriptions in the log")
		os.Exit(1)
	}

	ops := workload.GenerateMixed(g, workload.MixedConfig{
		Seed: cfg.Seed + 13, Total: 512, WriteRatio: 1.0, BatchSize: 4, DeleteFrac: 0.2,
	})
	batches, edges := 0, 0
	for _, op := range ops {
		if op.IsUpdate() {
			batches++
			edges += len(op.Adds) + len(op.Dels)
		}
	}

	// Because the subscriber queue must absorb the full stream between
	// drains, size it to the batch count.
	queue := batches + 8
	var prof *os.File
	if path := os.Getenv("RPQBENCH_CPUPROFILE"); path != "" {
		prof, _ = os.Create(path)
		pprof.StartCPUProfile(prof)
	}
	incMirrors, inc, err := runSubsMode(g,
		ringrpq.StandingConfig{QueueDepth: queue, EvalTimeout: timeout}, reqs, ops)
	if prof != nil {
		pprof.StopCPUProfile()
		prof.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "subs bench: incremental: %v\n", err)
		os.Exit(1)
	}
	fullMirrors, full, err := runSubsMode(g,
		ringrpq.StandingConfig{QueueDepth: queue, EvalTimeout: timeout, ForceFull: true}, reqs, ops)
	if err != nil {
		fmt.Fprintf(os.Stderr, "subs bench: full re-eval: %v\n", err)
		os.Exit(1)
	}

	// Cross-check: both modes must reconstruct identical result sets
	// from their delta streams.
	mismatches := 0
	for i := range incMirrors {
		a, b := incMirrors[i], fullMirrors[i]
		same := len(a.pairs) == len(b.pairs) && len(a.rows) == len(b.rows)
		if same {
			for p := range a.pairs {
				if !b.pairs[p] {
					same = false
					break
				}
			}
		}
		if same {
			for k := range a.rows {
				if !b.rows[k] {
					same = false
					break
				}
			}
		}
		if !same {
			mismatches++
			fmt.Fprintf(os.Stderr, "subs bench: MISMATCH sub %d: incremental %d pairs/%d rows, full %d pairs/%d rows\n",
				i, len(a.pairs), len(a.rows), len(b.pairs), len(b.rows))
		}
	}

	rep := subsReport{
		Bench:         "standing-subscriptions",
		Config:        cfg,
		Subscriptions: len(reqs),
		PatternSubs:   patterns,
		Batches:       batches,
		BatchEdges:    edges,
		Incremental:   inc,
		FullReeval:    full,
		Mismatches:    mismatches,
	}
	if inc.Latency.TotalMs > 0 {
		rep.SpeedupTotal = full.Latency.TotalMs / inc.Latency.TotalMs
	}
	if inc.Latency.P50us > 0 {
		rep.SpeedupP50 = full.Latency.P50us / inc.Latency.P50us
	}
	if inc.Latency.P95us > 0 {
		rep.SpeedupP95 = full.Latency.P95us / inc.Latency.P95us
	}
	fmt.Printf("subs bench: %d subscriptions (%d patterns), %d batches (%d edges)\n",
		len(reqs), patterns, batches, edges)
	fmt.Printf("subs bench: incremental delta latency p50=%.0fµs p95=%.0fµs (%d deltas, %d incremental / %d full / %d skipped steps)\n",
		inc.Latency.P50us, inc.Latency.P95us, inc.Deltas, inc.Incremental, inc.FullReevals, inc.Skipped)
	fmt.Printf("subs bench: full-reeval  delta latency p50=%.0fµs p95=%.0fµs (%d deltas)\n",
		full.Latency.P50us, full.Latency.P95us, full.Deltas)
	fmt.Printf("subs bench: speedup total=%.2fx p50=%.2fx p95=%.2fx, %d mismatches\n",
		rep.SpeedupTotal, rep.SpeedupP50, rep.SpeedupP95, mismatches)

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "subs bench: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "subs bench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "subs bench: %v\n", err)
		os.Exit(1)
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "subs bench: %d mismatched subscriptions\n", mismatches)
		os.Exit(1)
	}
	fmt.Printf("subs bench: wrote %s\n", path)
}
