// Command rpq loads a triple file and evaluates regular path queries —
// or, with -pattern, multi-clause graph patterns — against it using
// the ring index.
//
// Usage:
//
//	rpq -data graph.nt "Baquedano" "(l1|l2|l5)+" "?station"
//	rpq -data graph.nt -count "?x" "p31/p279*" "?y"
//	rpq -data graph.nt -pattern "SELECT ?x WHERE { ?x advisor+ ?y . ?y country Q30 }"
//	rpq -data graph.nt -update feed.ndjson "?x" "knows+" "?y"
//
// Endpoints starting with '?' are variables. The data file holds one
// "subject predicate object" triple per line ('#' comments, optional
// trailing dots, <IRI> tokens). Pattern mode prints a tab-separated
// table: a header of variable names, then one row per solution.
//
// -update applies a live-update stream before querying: NDJSON with
// one {"op":"add"|"del","s":...,"p":...,"o":...} per line (op defaults
// to add), the same format POST /update accepts in bulk. Queries then
// see ring ∪ adds − dels; -save persists the merged state (flushing
// the overlay into the ring first).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ringrpq"
	"ringrpq/internal/service"
)

func main() {
	var (
		data    = flag.String("data", "", "triple file to load")
		index   = flag.String("index", "", "serialised index to load (instead of -data)")
		shards  = flag.Int("shards", 0, "partition a -data build into this many sub-rings (0/1 = single ring)")
		save    = flag.String("save", "", "write the built index to this file (rdb1, or rdbs1 when sharded)")
		count   = flag.Bool("count", false, "print only the solution count")
		limit   = flag.Int("limit", 0, "cap the number of solutions (0 = all)")
		timeout = flag.Duration("timeout", 0, "per-query timeout (0 = none)")
		stats   = flag.Bool("stats", false, "print database statistics and exit")
		pattern = flag.Bool("pattern", false, "evaluate the single argument as a graph-pattern query (triple patterns + RPQ clauses)")
		update  = flag.String("update", "", "NDJSON update stream to apply before querying (one {\"op\",\"s\",\"p\",\"o\"} per line)")
	)
	flag.Parse()
	if *data == "" && *index == "" {
		fmt.Fprintln(os.Stderr, "rpq: one of -data or -index is required")
		os.Exit(2)
	}

	var db *ringrpq.DB
	start := time.Now()
	if *index != "" {
		f, err := os.Open(*index)
		if err != nil {
			fatal(err)
		}
		db, err = ringrpq.LoadDB(f)
		if err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "loaded %s in %v\n", db, time.Since(start))
	} else {
		f, err := os.Open(*data)
		if err != nil {
			fatal(err)
		}
		b := ringrpq.NewBuilderWithConfig(ringrpq.BuilderConfig{Shards: *shards})
		if err := b.Load(f); err != nil {
			fatal(err)
		}
		f.Close()
		db, err = b.Build()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "indexed %s in %v\n", db, time.Since(start))
	}
	if *update != "" {
		f, err := os.Open(*update)
		if err != nil {
			fatal(err)
		}
		adds, dels, err := service.DecodeNDJSONUpdates(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		conv := func(ts []service.UpdateTriple) []ringrpq.Triple {
			out := make([]ringrpq.Triple, len(ts))
			for i, t := range ts {
				out[i] = ringrpq.Triple{Subject: t.S, Predicate: t.P, Object: t.O}
			}
			return out
		}
		ustart := time.Now()
		st, err := db.Apply(conv(adds), conv(dels))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "applied %d adds, %d dels in %v (overlay: %d edges, %d tombstones)\n",
			len(adds), len(dels), time.Since(ustart), st.OverlayEdges, st.Tombstones)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := db.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved index to %s\n", *save)
	}

	if *stats {
		s := db.Stats()
		fmt.Printf("nodes=%d edges=%d completed=%d predicates=%d index=%dB (%.2f B/edge)\n",
			s.Nodes, s.Edges, s.CompletedEdges, s.Predicates, s.IndexBytes, db.BytesPerEdge())
		return
	}

	var opts []ringrpq.QueryOption
	if *limit > 0 {
		opts = append(opts, ringrpq.WithLimit(*limit))
	}
	if *timeout > 0 {
		opts = append(opts, ringrpq.WithTimeout(*timeout))
	}

	if *pattern {
		// Accept the query as one argument or as shell-split tokens.
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "rpq: -pattern wants the graph-pattern query as argument")
			os.Exit(2)
		}
		runPattern(db, strings.Join(flag.Args(), " "), *count, opts)
		return
	}

	if flag.NArg() != 3 {
		fmt.Fprintln(os.Stderr, "rpq: want exactly three arguments: subject expr object")
		os.Exit(2)
	}
	subject, expr, object := flag.Arg(0), flag.Arg(1), flag.Arg(2)

	n := 0
	qstart := time.Now()
	err := db.QueryFunc(subject, expr, object, func(s ringrpq.Solution) bool {
		n++
		if !*count {
			fmt.Printf("%s\t%s\n", s.Subject, s.Object)
		}
		return true
	}, opts...)
	elapsed := time.Since(qstart)
	if err == ringrpq.ErrTimeout {
		fmt.Fprintf(os.Stderr, "timeout after %v (%d solutions so far)\n", elapsed, n)
		os.Exit(1)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d solutions in %v\n", n, elapsed)
}

// runPattern evaluates a graph-pattern query and prints the projected
// result table (tab-separated, header first).
func runPattern(db *ringrpq.DB, src string, countOnly bool, opts []ringrpq.QueryOption) {
	qstart := time.Now()
	vars, rows, err := db.Select(src, opts...)
	elapsed := time.Since(qstart)
	if err == ringrpq.ErrTimeout {
		fmt.Fprintf(os.Stderr, "timeout after %v (%d rows so far)\n", elapsed, len(rows))
	} else if err != nil {
		fatal(err)
	}
	if !countOnly {
		fmt.Println(strings.Join(vars, "\t"))
		for _, row := range rows {
			fmt.Println(strings.Join(row, "\t"))
		}
	}
	fmt.Fprintf(os.Stderr, "%d rows in %v\n", len(rows), elapsed)
	if err == ringrpq.ErrTimeout {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rpq: %v\n", err)
	os.Exit(1)
}
