// Command rpqlint runs the repository's static-analysis suite
// (internal/lint) over the given package patterns and reports
// violations as `file:line: analyzer: message`, exiting non-zero if
// any survive //lint:ignore suppression.
//
// Usage:
//
//	rpqlint [packages]     # default ./...
//	rpqlint -list          # list analyzers
package main

import (
	"flag"
	"fmt"
	"os"

	"ringrpq/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rpqlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpqlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpqlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(analyzers, pkgs)
	for _, d := range diags {
		fmt.Println(d.Relativize(wd))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rpqlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
