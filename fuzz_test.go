package ringrpq

import (
	"bytes"
	"testing"
)

// savedDBBytes serialises a small database in both on-disk formats.
func savedDBBytes(tb testing.TB) (single, sharded []byte) {
	tb.Helper()
	build := func(shards int) []byte {
		b := NewBuilderWithConfig(BuilderConfig{Shards: shards})
		b.Add("Baq", "l1", "UCh")
		b.Add("UCh", "l1", "LH")
		b.Add("LH", "l2", "SA")
		b.Add("SA", "l5", "BA")
		b.Add("BA", "l5", "Baq")
		b.Add("SA", "bus", "UCh")
		db, err := b.Build()
		if err != nil {
			tb.Fatal(err)
		}
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			tb.Fatal(err)
		}
		return buf.Bytes()
	}
	return build(1), build(3)
}

// FuzzLoadDB feeds arbitrary bytes to the database loader. Whatever
// the input — truncated, bit-flipped, or wholly synthetic, in either
// the rdb1 or rdbs1 format — LoadDB must return an error or a usable
// database; it must never panic, and corrupt length prefixes must not
// force allocations beyond the input's own size.
//
// Run with: go test -run NONE -fuzz FuzzLoadDB .
func FuzzLoadDB(f *testing.F) {
	single, sharded := savedDBBytes(f)
	f.Add(single)
	f.Add(sharded)
	f.Add([]byte{})
	f.Add([]byte("rdb1"))
	f.Add([]byte("rdbs"))
	f.Add([]byte("rdb1gra1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add(single[:len(single)/2])
	f.Add(sharded[:len(sharded)/3])
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := LoadDB(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully loaded database must be queryable without
		// panicking on a trivial query.
		if _, qerr := db.Count("?s", "l1", "?o"); qerr != nil {
			t.Fatalf("loaded DB rejects a trivial query: %v", qerr)
		}
	})
}

// TestLoadDBTruncations deterministically checks every prefix of both
// serialised formats: each must produce an error, never a panic (the
// regression net for what FuzzLoadDB explores randomly).
func TestLoadDBTruncations(t *testing.T) {
	single, sharded := savedDBBytes(t)
	for name, raw := range map[string][]byte{"rdb1": single, "rdbs1": sharded} {
		for i := 0; i < len(raw); i++ {
			if _, err := LoadDB(bytes.NewReader(raw[:i])); err == nil {
				t.Fatalf("%s: LoadDB of %d/%d-byte prefix succeeded", name, i, len(raw))
			}
		}
	}
}

// TestLoadDBBitFlips flips each byte of the serialised formats in a
// few positions and requires LoadDB to either reject the input or
// return a database that survives a query — never panic.
func TestLoadDBBitFlips(t *testing.T) {
	single, sharded := savedDBBytes(t)
	for name, raw := range map[string][]byte{"rdb1": single, "rdbs1": sharded} {
		for i := 0; i < len(raw); i++ {
			for _, flip := range []byte{0x01, 0x80, 0xff} {
				mut := append([]byte(nil), raw...)
				mut[i] ^= flip
				db, err := LoadDB(bytes.NewReader(mut))
				if err != nil {
					continue
				}
				// Some flips (e.g. inside dictionary names) still load;
				// the result must stay usable.
				if _, qerr := db.Count("?s", "l1", "?o"); qerr != nil {
					t.Fatalf("%s: flipped byte %d: loaded DB rejects query: %v", name, i, qerr)
				}
			}
		}
	}
}
