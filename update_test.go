package ringrpq

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sortedPairs renders solutions for set comparison.
func sortedPairs(sols []Solution) []string {
	out := make([]string, len(sols))
	for i, s := range sols {
		out[i] = s.Subject + "→" + s.Object
	}
	sort.Strings(out)
	return out
}

func equalPairs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestApplyVisibleWithoutRebuild: the acceptance criterion's first
// clause — after Apply, Query/Select observe the change with no
// compaction having run.
func TestApplyVisibleWithoutRebuild(t *testing.T) {
	b := NewBuilder()
	b.Add("a", "knows", "b")
	b.Add("b", "knows", "c")
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db.SetCompactionThreshold(-1) // no rebuilds in this test

	if n, _ := db.Count("a", "knows+", "?x"); n != 2 {
		t.Fatalf("pre-update count = %d, want 2", n)
	}

	// Add a chain extension through a brand-new node, delete one edge.
	if _, err := db.Apply([]Triple{{"c", "knows", "dee"}}, []Triple{{"b", "knows", "c"}}); err != nil {
		t.Fatal(err)
	}
	sols, err := db.Query("a", "knows+", "?x")
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedPairs(sols); !equalPairs(got, []string{"a→b"}) {
		t.Fatalf("post-update: %v (the b→c edge is deleted, so c/dee are unreachable)", got)
	}
	sols, err = db.Query("c", "knows", "?x")
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedPairs(sols); !equalPairs(got, []string{"c→dee"}) {
		t.Fatalf("new-node edge missing: %v", got)
	}
	// Inverse direction of the overlay edge.
	if n, _ := db.Count("dee", "^knows", "?x"); n != 1 {
		t.Fatalf("inverse of the overlay edge missing")
	}
	// Pattern execution sees the union too.
	_, rows, err := db.Select("SELECT ?x WHERE { a knows ?y . ?y knows* ?x }")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "b" {
		t.Fatalf("pattern over union: %v", rows)
	}
	if st := db.UpdateStats(); st.OverlayEdges != 2 || st.Tombstones != 2 || st.Epoch != 0 {
		t.Fatalf("update stats: %+v", st)
	}

	// Unknown predicates are rejected; deletes of unknown names no-op.
	if _, err := db.Apply([]Triple{{"a", "likes", "b"}}, nil); !errors.Is(err, ErrUnknownPredicate) {
		t.Fatalf("unknown predicate: err = %v", err)
	}
	if _, err := db.Apply(nil, []Triple{{"zz", "knows", "qq"}}); err != nil {
		t.Fatalf("no-op delete: %v", err)
	}
}

// TestBeginCommitAndFlush covers the transaction builder and the
// synchronous compaction path end to end, including epoch movement and
// result stability across the swap.
func TestBeginCommitAndFlush(t *testing.T) {
	b := NewBuilder()
	b.Add("a", "p", "b")
	b.Add("b", "p", "c")
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db.SetCompactionThreshold(-1)

	if _, err := db.Begin().Add("c", "p", "d").Del("a", "p", "b").Commit(); err != nil {
		t.Fatal(err)
	}
	before, err := db.Query("?x", "p", "?y")
	if err != nil {
		t.Fatal(err)
	}
	st := db.UpdateStats()
	if st.OverlayEdges != 2 || st.Tombstones != 2 {
		t.Fatalf("overlay before flush: %+v", st)
	}

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st = db.UpdateStats()
	if st.OverlayEdges != 0 || st.Tombstones != 0 || st.Epoch != 1 || st.Compactions != 1 {
		t.Fatalf("post-flush stats: %+v", st)
	}
	after, err := db.Query("?x", "p", "?y")
	if err != nil {
		t.Fatal(err)
	}
	if !equalPairs(sortedPairs(before), sortedPairs(after)) {
		t.Fatalf("swap changed results: %v vs %v", sortedPairs(before), sortedPairs(after))
	}
	// Flushing a clean overlay is a no-op.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := db.UpdateStats(); st.Epoch != 1 {
		t.Fatalf("no-op flush moved the epoch: %+v", st)
	}
}

// TestSaveFlushesOverlay: Save persists exactly what the DB serves.
func TestSaveFlushesOverlay(t *testing.T) {
	b := NewBuilder()
	b.Add("a", "p", "b")
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db.SetCompactionThreshold(-1)
	if _, err := db.Apply([]Triple{{"b", "p", "newkid"}}, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := db2.Count("a", "p/p", "?x"); n != 1 {
		t.Fatalf("reloaded database lost the overlay edge")
	}
}

// oracleEdges is the mutable map-of-edges ground truth for the
// differential interleavings.
type oracleEdges map[[3]string]bool

func (o oracleEdges) apply(adds, dels []Triple) {
	for _, t := range adds {
		o[[3]string{t.Subject, t.Predicate, t.Object}] = true
	}
	for _, t := range dels {
		delete(o, [3]string{t.Subject, t.Predicate, t.Object})
	}
}

// expected answers (s, p, ?x) over the oracle, completed with inverses.
func (o oracleEdges) query(s, p string, inverse bool) []string {
	var out []string
	for e, ok := range o {
		if !ok || e[1] != p {
			continue
		}
		if !inverse && e[0] == s {
			out = append(out, s+"→"+e[2])
		}
		if inverse && e[2] == s {
			out = append(out, s+"→"+e[0])
		}
	}
	sort.Strings(out)
	return out
}

// testUpdateDifferential drives random Apply/Flush/compaction
// interleavings against the oracle.
func testUpdateDifferential(t *testing.T, shards int) {
	rng := rand.New(rand.NewSource(42 + int64(shards)))
	preds := []string{"pa", "pb", "pc"}
	node := func(i int) string { return fmt.Sprintf("n%02d", i) }

	b := NewBuilderWithConfig(BuilderConfig{Shards: shards})
	oracle := oracleEdges{}
	for i := 0; i < 60; i++ {
		s, p, o := node(rng.Intn(12)), preds[rng.Intn(len(preds))], node(rng.Intn(12))
		b.Add(s, p, o)
		oracle[[3]string{s, p, o}] = true
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// A low threshold lets automatic compaction interleave naturally.
	db.SetCompactionThreshold(24)

	check := func(step int) {
		t.Helper()
		for i := 0; i < 12; i++ {
			s := node(i)
			for _, p := range preds {
				for _, inverse := range []bool{false, true} {
					expr := p
					if inverse {
						expr = "^" + p
					}
					sols, err := db.Query(s, expr, "?x")
					if err != nil {
						t.Fatalf("step %d: query(%s, %s): %v", step, s, expr, err)
					}
					got := sortedPairs(sols)
					want := oracle.query(s, p, inverse)
					if !equalPairs(got, want) {
						t.Fatalf("step %d: (%s, %s, ?x) = %v, oracle %v", step, s, expr, got, want)
					}
				}
			}
		}
	}

	check(-1)
	for step := 0; step < 40; step++ {
		switch rng.Intn(10) {
		case 0:
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		default:
			var adds, dels []Triple
			for n := rng.Intn(4); n >= 0; n-- {
				tr := Triple{node(rng.Intn(14)), preds[rng.Intn(len(preds))], node(rng.Intn(14))}
				if rng.Intn(3) == 0 {
					dels = append(dels, tr)
				} else {
					adds = append(adds, tr)
				}
			}
			if _, err := db.Apply(adds, dels); err != nil {
				t.Fatal(err)
			}
			// The oracle applies adds first, dels second — DB.Apply's
			// documented order.
			oracle.apply(adds, dels)
		}
		check(step)
	}
	// Final flush must preserve everything.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	check(999)
	if db.UpdateStats().Epoch == 0 {
		t.Fatalf("no compaction ever ran; the interleaving lost its bite")
	}
}

func TestUpdateDifferential(t *testing.T)        { testUpdateDifferential(t, 1) }
func TestUpdateDifferentialSharded(t *testing.T) { testUpdateDifferential(t, 3) }

// TestUpdateStressTornSnapshot is the acceptance criterion's
// concurrent read+write stress: every Apply atomically moves a single
// marker edge (delete the old target, add the new one in one batch),
// so any query observing zero or two targets has seen a torn snapshot.
// Run under -race via `make race`.
func TestUpdateStressTornSnapshot(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			b := NewBuilderWithConfig(BuilderConfig{Shards: shards})
			b.Add("src", "mark", "t0000")
			for i := 0; i < 40; i++ {
				b.Add(fmt.Sprintf("f%d", i), "filler", fmt.Sprintf("g%d", i))
			}
			db, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			db.SetCompactionThreshold(8) // frequent swaps under fire

			svc := NewService(db, ServiceConfig{Workers: 4, ResultCacheEntries: 64})
			defer svc.Close()

			const moves = 300
			var stop atomic.Bool
			var wg sync.WaitGroup
			writerErr := make(chan error, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer stop.Store(true)
				for i := 1; i <= moves; i++ {
					old := fmt.Sprintf("t%04d", i-1)
					next := fmt.Sprintf("t%04d", i)
					if _, err := db.Apply(
						[]Triple{{"src", "mark", next}},
						[]Triple{{"src", "mark", old}},
					); err != nil {
						writerErr <- err
						return
					}
				}
			}()

			readers := 4
			readerErr := make(chan error, readers)
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx := context.Background()
					for !stop.Load() {
						sols, err := svc.Query(ctx, "src", "mark", "?x")
						if err != nil {
							readerErr <- err
							return
						}
						if len(sols) != 1 {
							readerErr <- fmt.Errorf("torn snapshot: saw %d marker edges (%v)", len(sols), sortedPairs(sols))
							return
						}
					}
				}()
			}
			wg.Wait()
			close(writerErr)
			close(readerErr)
			for err := range writerErr {
				t.Fatal(err)
			}
			for err := range readerErr {
				t.Fatal(err)
			}

			// Converged state.
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			final := fmt.Sprintf("t%04d", moves)
			sols, err := db.Query("src", "mark", "?x")
			if err != nil {
				t.Fatal(err)
			}
			if len(sols) != 1 || sols[0].Object != final {
				t.Fatalf("final marker = %v, want %s", sortedPairs(sols), final)
			}
			if db.UpdateStats().Epoch == 0 {
				t.Fatalf("stress run never compacted")
			}
		})
	}
}

// TestConcurrentUpdateBatches: concurrent Apply calls from several
// goroutines (and clones) serialise without losing updates.
func TestConcurrentUpdateBatches(t *testing.T) {
	b := NewBuilder()
	b.Add("seed", "p", "seed2")
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db.SetCompactionThreshold(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := db.Clone()
			for i := 0; i < 25; i++ {
				if _, err := h.Apply([]Triple{{fmt.Sprintf("w%d", w), "p", fmt.Sprintf("x%d_%d", w, i)}}, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		if n, _ := db.Count(fmt.Sprintf("w%d", w), "p", "?x"); n != 25 {
			t.Fatalf("writer %d lost updates: %d/25", w, n)
		}
	}
	if st := db.UpdateStats(); st.DataVersion != 101 && st.DataVersion != 102 {
		// 100 applies + 1–2 swaps (auto + explicit flush).
		t.Logf("data version %d (informational)", st.DataVersion)
	}
}

// TestUpdateTimeoutStillHonoured: the union path honours WithTimeout.
func TestUpdateTimeoutStillHonoured(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 200; i++ {
		b.Add(fmt.Sprintf("n%d", i), "p", fmt.Sprintf("n%d", (i+1)%200))
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db.SetCompactionThreshold(-1)
	if _, err := db.Apply([]Triple{{"n0", "p", "n100"}}, nil); err != nil {
		t.Fatal(err)
	}
	err = db.QueryFunc("?x", "p*", "?y", func(Solution) bool {
		time.Sleep(50 * time.Microsecond)
		return true
	}, WithTimeout(time.Millisecond))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("union-path timeout: err = %v", err)
	}
}

// TestRejectedApplyLeavesNoPhantomNodes: a batch failing on an unknown
// predicate must not intern its node names — phantoms would surface as
// spurious nullable self-pairs.
func TestRejectedApplyLeavesNoPhantomNodes(t *testing.T) {
	b := NewBuilder()
	b.Add("a", "p", "b")
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	before := len(db.Nodes())
	if _, err := db.Apply([]Triple{{"ghost1", "p", "ghost2"}, {"x", "bogus", "y"}}, nil); !errors.Is(err, ErrUnknownPredicate) {
		t.Fatalf("err = %v", err)
	}
	if got := len(db.Nodes()); got != before {
		t.Fatalf("rejected batch grew the dictionary: %d → %d", before, got)
	}
	// A later valid update must not resurrect the phantoms as (v, v)
	// self-pairs of nullable queries.
	if _, err := db.Apply([]Triple{{"a", "p", "c"}}, nil); err != nil {
		t.Fatal(err)
	}
	sols, err := db.Query("?x", "p?", "?y")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sols {
		if s.Subject == "ghost1" || s.Subject == "ghost2" {
			t.Fatalf("phantom node leaked into results: %v", s)
		}
	}
}

// TestReplayLogBounded: the overlay's replay log must not grow without
// bound when batches cancel out below the compaction threshold.
func TestReplayLogBounded(t *testing.T) {
	b := NewBuilder()
	b.Add("a", "p", "b")
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db.SetCompactionThreshold(-1) // even with compaction off, the log stays bounded
	for i := 0; i < 200; i++ {
		// Add then delete the same non-static edge: consolidated weight
		// returns to zero every other batch.
		if _, err := db.Apply([]Triple{{"a", "p", "zz"}}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Apply(nil, []Triple{{"a", "p", "zz"}}); err != nil {
			t.Fatal(err)
		}
	}
	st := db.UpdateStats()
	if st.OverlayEdges != 0 || st.Tombstones != 0 {
		t.Fatalf("overlay should have cancelled out: %+v", st)
	}
	if n := db.h.cur.Load().ov.BatchCount(); n > 1 {
		t.Fatalf("replay log grew to %d batches with no compaction in flight", n)
	}
}
