package ringrpq

import (
	"sort"
	"strings"
	"testing"
	"time"
)

func metroDB(t *testing.T) *DB {
	t.Helper()
	b := NewBuilder()
	add := func(s, p, o string) { b.Add(s, p, o); b.Add(o, p, s) }
	add("Baquedano", "l1", "UCh")
	add("UCh", "l1", "LosHeroes")
	add("LosHeroes", "l2", "SantaAna")
	add("SantaAna", "l5", "BellasArtes")
	add("BellasArtes", "l5", "Baquedano")
	b.Add("SantaAna", "bus", "UCh")
	b.Add("BellasArtes", "bus", "SantaAna")
	b.Add("BellasArtes", "bus", "UCh")
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func objects(sols []Solution) []string {
	var out []string
	for _, s := range sols {
		out = append(out, s.Object)
	}
	sort.Strings(out)
	return out
}

// The introduction's motivating query: stations reachable from Baquedano
// by metro.
func TestIntroExample(t *testing.T) {
	db := metroDB(t)
	sols, err := db.Query("Baquedano", "(l1|l2|l5)+", "?station")
	if err != nil {
		t.Fatal(err)
	}
	got := objects(sols)
	want := []string{"Baquedano", "BellasArtes", "LosHeroes", "SantaAna", "UCh"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("reachable by metro: %v, want %v", got, want)
	}
}

// The §4 worked example through the public API.
func TestWorkedExample(t *testing.T) {
	db := metroDB(t)
	sols, err := db.Query("Baquedano", "l5+/bus", "?y")
	if err != nil {
		t.Fatal(err)
	}
	got := objects(sols)
	if strings.Join(got, ",") != "SantaAna,UCh" {
		t.Fatalf("l5+/bus from Baquedano: %v, want [SantaAna UCh]", got)
	}
}

func TestBothConstant(t *testing.T) {
	db := metroDB(t)
	sols, err := db.Query("Baquedano", "(l1|l2|l5)+", "SantaAna")
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("got %d solutions, want 1", len(sols))
	}
	none, err := db.Query("Baquedano", "bus", "SantaAna")
	if err != nil || len(none) != 0 {
		t.Fatalf("unsatisfiable query returned %v (err %v)", none, err)
	}
}

func TestVariableToVariable(t *testing.T) {
	db := metroDB(t)
	n, err := db.Count("?x", "bus", "?y")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("bus pairs=%d, want 3", n)
	}
}

func TestInverse(t *testing.T) {
	db := metroDB(t)
	a, err := db.Query("?x", "^bus", "SantaAna")
	if err != nil {
		t.Fatal(err)
	}
	// ^bus into SantaAna means bus edges out of SantaAna: UCh.
	if len(a) != 1 || a[0].Subject != "UCh" {
		t.Fatalf("^bus to SantaAna: %v", a)
	}
}

func TestUnknownConstant(t *testing.T) {
	db := metroDB(t)
	sols, err := db.Query("Atlantis", "l1*", "?y")
	if err != nil || sols != nil {
		t.Fatalf("unknown constant: %v, %v", sols, err)
	}
}

func TestBadExpression(t *testing.T) {
	db := metroDB(t)
	if _, err := db.Query("?x", "l1|", "?y"); err == nil {
		t.Fatal("malformed expression must error")
	}
	if err := ParseExpr("(a"); err == nil {
		t.Fatal("ParseExpr must reject malformed input")
	}
}

func TestLimitAndStreaming(t *testing.T) {
	db := metroDB(t)
	sols, err := db.Query("?x", "(l1|l2|l5)*", "?y", WithLimit(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 4 {
		t.Fatalf("limit ignored: %d solutions", len(sols))
	}
	count := 0
	err = db.QueryFunc("?x", "(l1|l2|l5)*", "?y", func(Solution) bool {
		count++
		return count < 2
	})
	if err != nil || count != 2 {
		t.Fatalf("streaming stop broken: count=%d err=%v", count, err)
	}
}

func TestTimeoutSurfaced(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 3000; i++ {
		b.Add(nodeName(i), "p", nodeName((i*7+1)%3000))
		b.Add(nodeName(i), "q", nodeName((i*11+3)%3000))
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Query("?x", "(p|q)*", "?y", WithTimeout(time.Nanosecond))
	if err != ErrTimeout {
		t.Fatalf("err=%v, want ErrTimeout", err)
	}
}

func nodeName(i int) string { return "N" + string(rune('A'+i%26)) + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}

func TestStats(t *testing.T) {
	db := metroDB(t)
	s := db.Stats()
	if s.Edges != 13 || s.CompletedEdges != 26 || s.Predicates != 4 {
		t.Fatalf("Stats=%+v", s)
	}
	if s.Nodes != 5 {
		t.Fatalf("Nodes=%d, want 5", s.Nodes)
	}
	if db.BytesPerEdge() <= 0 {
		t.Fatal("BytesPerEdge must be positive")
	}
	if !strings.Contains(db.String(), "5 nodes") {
		t.Fatalf("String=%q", db.String())
	}
	if len(db.Nodes()) != 5 || len(db.Predicates()) != 4 {
		t.Fatal("Nodes/Predicates listings wrong")
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatal("empty graph must be rejected")
	}
}

func TestLoadAndLayouts(t *testing.T) {
	for _, layout := range []Layout{WaveletMatrix, WaveletTree} {
		b := NewBuilder()
		b.SetLayout(layout)
		if err := b.Load(strings.NewReader("a p b\nb p c\nc p a\n")); err != nil {
			t.Fatal(err)
		}
		db, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		n, err := db.Count("a", "p+", "?y")
		if err != nil || n != 3 {
			t.Fatalf("layout %v: p+ from a gives %d, want 3", layout, n)
		}
	}
}

func TestClone(t *testing.T) {
	db := metroDB(t)
	clone := db.Clone()
	done := make(chan error, 2)
	for _, d := range []*DB{db, clone} {
		d := d
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := d.Query("Baquedano", "l5+/bus", "?y"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
