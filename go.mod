module ringrpq

go 1.24
