package ringrpq_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ringrpq"
)

// stressDB builds a random graph large enough for queries to traverse
// real structure but small enough for the race detector.
func stressDB(t testing.TB) *ringrpq.DB {
	t.Helper()
	const (
		nodes = 300
		edges = 1800
		preds = 8
	)
	rng := rand.New(rand.NewSource(7))
	b := ringrpq.NewBuilder()
	for i := 0; i < edges; i++ {
		b.Add(
			fmt.Sprintf("n%d", rng.Intn(nodes)),
			fmt.Sprintf("p%d", rng.Intn(preds)),
			fmt.Sprintf("n%d", rng.Intn(nodes)),
		)
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// stressQueries mixes the paper's common patterns over constant and
// variable endpoints, including inverses, alternations, closures and a
// negated set.
func stressQueries() []ringrpq.Request {
	exprs := []string{
		"p0",
		"p0/p1",
		"p2*",
		"p3+",
		"(p0|p1)/p2?",
		"^p4/p5",
		"(p0|^p1)*",
		"!(p0|p1)",
		"p6/p7*",
		"(p2/p3)+",
	}
	var qs []ringrpq.Request
	for i, e := range exprs {
		qs = append(qs, ringrpq.Request{Subject: "?s", Expr: e, Object: "?o"})
		qs = append(qs, ringrpq.Request{Subject: fmt.Sprintf("n%d", i*17%300), Expr: e, Object: "?o"})
		qs = append(qs, ringrpq.Request{Subject: "?s", Expr: e, Object: fmt.Sprintf("n%d", i*31%300)})
	}
	return qs
}

func sortedSolutions(sols []ringrpq.Solution) []ringrpq.Solution {
	out := append([]ringrpq.Solution(nil), sols...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Subject != out[j].Subject {
			return out[i].Subject < out[j].Subject
		}
		return out[i].Object < out[j].Object
	})
	return out
}

func solutionsEqual(a, b []ringrpq.Solution) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reference evaluates every query single-threadedly on the base DB.
func reference(t testing.TB, db *ringrpq.DB, qs []ringrpq.Request) [][]ringrpq.Solution {
	t.Helper()
	out := make([][]ringrpq.Solution, len(qs))
	for i, q := range qs {
		sols, err := db.Query(q.Subject, q.Expr, q.Object)
		if err != nil {
			t.Fatalf("reference query %d (%s): %v", i, q.Expr, err)
		}
		out[i] = sortedSolutions(sols)
	}
	return out
}

// TestServiceStress runs many goroutines through a Service and checks
// every result set against the single-threaded reference. Run with
// -race: the immutability of the index and the confinement of each
// worker's engine are exactly what it verifies.
func TestServiceStress(t *testing.T) {
	db := stressDB(t)
	qs := stressQueries()
	want := reference(t, db, qs)

	svc := ringrpq.NewService(db, ringrpq.ServiceConfig{Workers: 4, QueueDepth: 8})
	defer svc.Close()
	ctx := context.Background()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range qs {
				q := qs[(i+c)%len(qs)]
				wantSet := want[(i+c)%len(qs)]
				sols, err := svc.Query(ctx, q.Subject, q.Expr, q.Object)
				if err != nil {
					errs <- fmt.Errorf("client %d query %q: %v", c, q.Expr, err)
					return
				}
				if !solutionsEqual(sortedSolutions(sols), wantSet) {
					errs <- fmt.Errorf("client %d query (%s,%s,%s): got %d solutions, want %d",
						c, q.Subject, q.Expr, q.Object, len(sols), len(wantSet))
					return
				}
				n, err := svc.Count(ctx, q.Subject, q.Expr, q.Object)
				if err != nil || n != len(wantSet) {
					errs <- fmt.Errorf("client %d count (%s,%s,%s): n=%d err=%v, want %d",
						c, q.Subject, q.Expr, q.Object, n, err, len(wantSet))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := svc.Stats()
	if st.Requests == 0 || st.Completed == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}

// TestServiceBatchStress checks Batch against the same reference while
// other clients compete for the pool.
func TestServiceBatchStress(t *testing.T) {
	db := stressDB(t)
	qs := stressQueries()
	want := reference(t, db, qs)

	svc := ringrpq.NewService(db, ringrpq.ServiceConfig{Workers: 4, QueueDepth: 4})
	defer svc.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results := svc.Batch(ctx, qs)
			for i, res := range results {
				if res.Err != nil {
					t.Errorf("batch[%d] (%s): %v", i, qs[i].Expr, res.Err)
					return
				}
				if !solutionsEqual(sortedSolutions(res.Solutions), want[i]) {
					t.Errorf("batch[%d] (%s,%s,%s): got %d solutions, want %d",
						i, qs[i].Subject, qs[i].Expr, qs[i].Object, len(res.Solutions), len(want[i]))
				}
			}
		}()
	}
	wg.Wait()
}

// TestCloneStress exercises the raw DB.Clone path the service is built
// on: one clone per goroutine, shared immutable index, no pool.
func TestCloneStress(t *testing.T) {
	db := stressDB(t)
	qs := stressQueries()
	want := reference(t, db, qs)

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			clone := db.Clone()
			for i, q := range qs {
				sols, err := clone.Query(q.Subject, q.Expr, q.Object)
				if err != nil {
					t.Errorf("clone %d query %q: %v", c, q.Expr, err)
					return
				}
				if !solutionsEqual(sortedSolutions(sols), want[i]) {
					t.Errorf("clone %d query (%s,%s,%s): got %d solutions, want %d",
						c, q.Subject, q.Expr, q.Object, len(sols), len(want[i]))
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestGroupedServiceStress drives concurrent batches through a pool
// with cross-query traversal grouping enabled and the result cache
// off, so queued jobs coalesce into shared traversals and identical
// in-flight jobs dedup onto one evaluation — and checks every result
// against the single-threaded reference. Run with -race: the grouped
// path shares one snapshot and one engine across a drained batch.
func TestGroupedServiceStress(t *testing.T) {
	db := stressDB(t)
	qs := stressQueries()
	want := reference(t, db, qs)

	// Duplicate the query list so drained batches contain identical
	// in-flight jobs for the dedup path.
	dup := append(append([]ringrpq.Request(nil), qs...), qs...)
	wantDup := append(append([][]ringrpq.Solution(nil), want...), want...)

	svc := ringrpq.NewService(db, ringrpq.ServiceConfig{
		Workers: 2, QueueDepth: len(dup),
		GroupTraversals:    true,
		ResultCacheEntries: -1, ResultCacheBytes: -1,
	})
	defer svc.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results := svc.Batch(ctx, dup)
			for i, res := range results {
				if res.Err != nil {
					t.Errorf("batch[%d] (%s): %v", i, dup[i].Expr, res.Err)
					return
				}
				if !solutionsEqual(sortedSolutions(res.Solutions), wantDup[i]) {
					t.Errorf("batch[%d] (%s,%s,%s): got %d solutions, want %d",
						i, dup[i].Subject, dup[i].Expr, dup[i].Object, len(res.Solutions), len(wantDup[i]))
				}
			}
		}()
	}
	wg.Wait()

	st := svc.Stats()
	if st.Grouped == 0 {
		t.Fatalf("no jobs were grouped: %+v", st)
	}
	if st.Deduped == 0 {
		t.Fatalf("no jobs were deduped: %+v", st)
	}
}
