package ringrpq

// Property-based differential harness for the standing-query
// subsystem: random graphs × random update sequences × registered
// expressions and patterns, asserting after every applied batch that
// the accumulated deltas reproduce exactly the full re-evaluation of
// each query — unsharded and sharded. The registry worker runs
// concurrently with the applying goroutine, so `go test -race` also
// exercises the notification path.

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"ringrpq/internal/enginetest"
	"ringrpq/internal/pathexpr"
)

// diffMirror tracks one subscription's result set as reconstructed
// purely from its delta stream.
type diffMirror struct {
	sub             *Subscription
	subject, object string
	expr, pattern   string
	pairs           map[Pair]bool
	rows            map[string]bool
	label           string
}

func diffRowKey(row []string) string {
	var sb strings.Builder
	for _, v := range row {
		sb.WriteString(strconv.Itoa(len(v)))
		sb.WriteByte(':')
		sb.WriteString(v)
	}
	return sb.String()
}

// drain applies every ready delta to the mirror, asserting stream
// sanity (no duplicate additions, no phantom retractions).
func (m *diffMirror) drain(t *testing.T) {
	t.Helper()
	for {
		d, ok, err := m.sub.TryNext()
		if err != nil {
			t.Fatalf("%s: TryNext: %v", m.label, err)
		}
		if !ok {
			return
		}
		for _, p := range d.Added {
			if m.pairs[p] {
				t.Fatalf("%s: duplicate add %v at version %d", m.label, p, d.Version)
			}
			m.pairs[p] = true
		}
		for _, p := range d.Removed {
			if !m.pairs[p] {
				t.Fatalf("%s: phantom removal %v at version %d", m.label, p, d.Version)
			}
			delete(m.pairs, p)
		}
		for _, row := range d.AddedRows {
			k := diffRowKey(row)
			if m.rows[k] {
				t.Fatalf("%s: duplicate row add %v at version %d", m.label, row, d.Version)
			}
			m.rows[k] = true
		}
		for _, row := range d.RemovedRows {
			k := diffRowKey(row)
			if !m.rows[k] {
				t.Fatalf("%s: phantom row removal %v at version %d", m.label, row, d.Version)
			}
			delete(m.rows, k)
		}
	}
}

// check compares the mirror against a full re-evaluation on the
// current database.
func (m *diffMirror) check(t *testing.T, db *DB, step int) {
	t.Helper()
	if m.pattern != "" {
		_, rows, err := db.Select(m.pattern)
		if err != nil {
			t.Fatalf("%s: Select: %v", m.label, err)
		}
		if len(rows) != len(m.rows) {
			t.Fatalf("%s step %d: mirror has %d rows, full eval %d", m.label, step, len(m.rows), len(rows))
		}
		for _, row := range rows {
			if !m.rows[diffRowKey(row)] {
				t.Fatalf("%s step %d: mirror missing row %v", m.label, step, row)
			}
		}
		return
	}
	sols, err := db.Query(m.subject, m.expr, m.object)
	if err != nil {
		t.Fatalf("%s: Query: %v", m.label, err)
	}
	if len(sols) != len(m.pairs) {
		t.Fatalf("%s step %d: mirror has %d pairs, full eval %d\nmirror=%v\nfull=%v",
			m.label, step, len(m.pairs), len(sols), m.pairs, sols)
	}
	for _, s := range sols {
		if !m.pairs[Pair{Subject: s.Subject, Object: s.Object}] {
			t.Fatalf("%s step %d: mirror missing pair %v", m.label, step, s)
		}
	}
}

func diffNode(i int) string { return fmt.Sprintf("n%d", i) }
func diffPred(i int) string { return "p" + string(rune('a'+i)) }

// subscribeMirror registers one standing query and seeds its mirror
// (from the Snapshot baseline delta or a direct evaluation).
func subscribeMirror(t *testing.T, db *DB, label, subject, object, expr, pattern string, wantSnapshot bool) *diffMirror {
	t.Helper()
	sub, err := db.Subscribe(SubscribeRequest{
		Subject: subject, Object: object, Expr: expr, Pattern: pattern,
		Snapshot: wantSnapshot,
	})
	if err != nil {
		t.Fatalf("%s: Subscribe: %v", label, err)
	}
	m := &diffMirror{
		sub: sub, subject: subject, object: object, expr: expr, pattern: pattern,
		pairs: map[Pair]bool{}, rows: map[string]bool{}, label: label,
	}
	if wantSnapshot {
		m.drain(t) // the baseline delta seeds the mirror
	} else if pattern != "" {
		_, rows, err := db.Select(pattern)
		if err != nil {
			t.Fatalf("%s: initial Select: %v", label, err)
		}
		for _, row := range rows {
			m.rows[diffRowKey(row)] = true
		}
	} else {
		sols, err := db.Query(subject, expr, object)
		if err != nil {
			t.Fatalf("%s: initial Query: %v", label, err)
		}
		for _, s := range sols {
			m.pairs[Pair{Subject: s.Subject, Object: s.Object}] = true
		}
	}
	return m
}

// runStandingDifferential runs the property for one layout and counts
// (subscription, batch) verifications.
func runStandingDifferential(t *testing.T, shards, graphs int) int {
	t.Helper()
	checks := 0
	for g := 0; g < graphs; g++ {
		seed := int64(1000*shards + 17*g + 3)
		rng := rand.New(rand.NewSource(seed))
		nv := 10 + rng.Intn(8)
		np := 3 + rng.Intn(2)
		b := NewBuilderWithConfig(BuilderConfig{Shards: shards})
		var triples []Triple
		for i := 0; i < 35+rng.Intn(35); i++ {
			tr := Triple{diffNode(rng.Intn(nv)), diffPred(rng.Intn(np)), diffNode(rng.Intn(nv))}
			b.Add(tr.Subject, tr.Predicate, tr.Object)
			triples = append(triples, tr)
		}
		db, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}

		ghost := fmt.Sprintf("ghost%d", g)
		var mirrors []*diffMirror
		addExprSub := func(i int, subject, object string) {
			expr := pathexpr.String(enginetest.RandomExpr(rng, np, 2))
			label := fmt.Sprintf("g%d/sub%d{%s %s %s}", g, len(mirrors), subject, expr, object)
			mirrors = append(mirrors, subscribeMirror(t, db, label, subject, object, expr, "", i%2 == 0))
		}
		for i := 0; i < 4; i++ {
			addExprSub(i, "?s", "?o")
		}
		addExprSub(4, diffNode(rng.Intn(nv)), "?o")                   // constant subject
		addExprSub(5, "?s", diffNode(rng.Intn(nv)))                   // constant object
		addExprSub(6, ghost, "?o")                                    // unresolved constant
		addExprSub(7, diffNode(rng.Intn(nv)), diffNode(rng.Intn(nv))) // both constant

		// Same-predicate clauses keep the pattern single-shard; the
		// mixed ones are valid only unsharded (ErrCrossShard otherwise)
		// and are skipped when registration fails on a sharded layout.
		patterns := []string{
			fmt.Sprintf("?x %s ?y . ?y %s ?z", diffPred(0), diffPred(0)),
			fmt.Sprintf("SELECT ?x ?z WHERE { ?x %s+ ?z }", diffPred(1)),
			fmt.Sprintf("?x %s ?y . ?y %s ?z", diffPred(0), diffPred(1)),
		}
		for i, p := range patterns {
			label := fmt.Sprintf("g%d/pat%d{%s}", g, i, p)
			sub, err := db.Subscribe(SubscribeRequest{Pattern: p, Snapshot: true})
			if err != nil {
				if shards > 1 {
					continue // cross-shard pattern on a sharded layout
				}
				t.Fatalf("%s: Subscribe: %v", label, err)
			}
			m := &diffMirror{sub: sub, pattern: p, pairs: map[Pair]bool{}, rows: map[string]bool{}, label: label}
			m.drain(t)
			mirrors = append(mirrors, m)
		}

		steps := 6
		for step := 0; step < steps; step++ {
			var adds, dels []Triple
			for i := 0; i < 2+rng.Intn(6); i++ {
				s := diffNode(rng.Intn(nv))
				if rng.Intn(6) == 0 {
					s = fmt.Sprintf("f%d_%d_%d", g, step, i) // fresh node
				}
				if step == 2 && i == 0 {
					s = ghost // resolve the ghost constant mid-sequence
				}
				tr := Triple{s, diffPred(rng.Intn(np)), diffNode(rng.Intn(nv))}
				adds = append(adds, tr)
				triples = append(triples, tr)
			}
			for i := 0; i < rng.Intn(5); i++ {
				dels = append(dels, triples[rng.Intn(len(triples))])
			}
			if _, err := db.Apply(adds, dels); err != nil {
				t.Fatalf("g%d step %d: Apply: %v", g, step, err)
			}
			if step == 3 {
				if err := db.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			db.SyncStanding()
			for _, m := range mirrors {
				m.drain(t)
				m.check(t, db, step)
				checks++
			}
		}
		for _, m := range mirrors {
			m.sub.Close()
		}
	}
	return checks
}

func TestStandingDifferential(t *testing.T) {
	checks := runStandingDifferential(t, 1, 6)
	if checks < 200 {
		t.Fatalf("only %d differential cases, want >= 200", checks)
	}
	t.Logf("verified %d (subscription, batch) cases", checks)
}

func TestStandingDifferentialSharded(t *testing.T) {
	checks := runStandingDifferential(t, 3, 4)
	if checks < 200 {
		t.Fatalf("only %d differential cases, want >= 200", checks)
	}
	t.Logf("verified %d sharded (subscription, batch) cases", checks)
}
