package ringrpq

// Crash-recovery tests for the durability layer (durable.go +
// internal/wal). The property harness runs a fixed update workload
// against a fault-injected in-memory filesystem, kills the "process" at
// a random byte offset, tears the unsynced suffix the way a crash
// would, recovers, and checks the recovered database against a
// map-of-edges oracle — under fsync=always no acknowledged batch may
// ever be lost, and the recovered state must equal the oracle replayed
// to exactly the recovered version.

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"ringrpq/internal/wal"
)

const crashDir = "state"

func durableCfg() WALConfig {
	// Small segments so the workload rolls through several of them
	// (torn tails, truncation and multi-segment replay all get coverage).
	return WALConfig{Dir: crashDir, Fsync: "always", SegmentBytes: 2048}
}

// crashSeedTriples is the deterministic initial graph: predicates
// p0..p3 (the completed id space is fixed at build time) over a few
// nodes.
func crashSeedTriples() []Triple {
	var ts []Triple
	for p := 0; p < 4; p++ {
		ts = append(ts, Triple{"n0", fmt.Sprintf("p%d", p), "n1"})
	}
	ts = append(ts, Triple{"n1", "p0", "n2"})
	return ts
}

func buildCrashSeed() (*DB, error) {
	b := NewBuilder()
	for _, t := range crashSeedTriples() {
		b.Add(t.Subject, t.Predicate, t.Object)
	}
	return b.Build()
}

// crashOp is one workload step: an update batch or a synchronous
// compaction.
type crashOp struct {
	adds, dels []Triple
	flush      bool
}

// crashWorkload is the fixed update sequence: 26 batches interning
// fresh and repeated nodes across all four predicates, deletes that hit
// earlier adds (and one seed edge), and two compactions that checkpoint
// and truncate mid-stream.
func crashWorkload() []crashOp {
	addsOf := func(i int) []Triple {
		var adds []Triple
		for j := 0; j < 4; j++ {
			adds = append(adds, Triple{
				Subject:   fmt.Sprintf("n%d", (i*7+j*3)%40),
				Predicate: fmt.Sprintf("p%d", (i+j)%4),
				Object:    fmt.Sprintf("n%d", (i*5+j*11+1)%40),
			})
		}
		return adds
	}
	var ops []crashOp
	for i := 0; i < 28; i++ {
		if i == 9 || i == 19 {
			ops = append(ops, crashOp{flush: true})
			continue
		}
		o := crashOp{adds: addsOf(i)}
		if i > 2 {
			// Delete an edge batch i-3 added (it may have been deleted or
			// re-added since; the oracle tracks the same semantics).
			o.dels = append(o.dels, addsOf(i - 3)[0])
		}
		if i == 5 {
			o.dels = append(o.dels, Triple{"n0", "p1", "n1"})
		}
		ops = append(ops, o)
	}
	return ops
}

// tracker applies ops and records which op produced each data version,
// so the oracle can be replayed to exactly the version a recovery
// reaches. Versions absent from byVersion are compaction swaps (data
// no-ops). All applies are single-threaded, so before/after version
// reads are exact.
type tracker struct {
	db        *DB
	byVersion map[uint64]crashOp
	acked     uint64 // highest version whose Apply returned nil
	max       uint64 // highest version produced in memory
}

func (tr *tracker) apply(o crashOp) error {
	var err error
	if o.flush {
		err = tr.db.Flush()
	} else {
		before := tr.db.DataVersion()
		_, err = tr.db.Apply(o.adds, o.dels)
		if after := tr.db.DataVersion(); after == before+1 {
			tr.byVersion[after] = o
			if err == nil && after > tr.acked {
				tr.acked = after
			}
		}
	}
	if v := tr.db.DataVersion(); v > tr.max {
		tr.max = v
	}
	return err
}

// oracleAt replays the tracked ops onto the seed edge set up to
// version v.
func oracleAt(byVersion map[uint64]crashOp, v uint64) map[Triple]bool {
	set := map[Triple]bool{}
	for _, t := range crashSeedTriples() {
		set[t] = true
	}
	for i := uint64(1); i <= v; i++ {
		o, ok := byVersion[i]
		if !ok {
			continue // a swap: no data change
		}
		for _, t := range o.adds {
			set[t] = true
		}
		for _, t := range o.dels {
			delete(set, t)
		}
	}
	return set
}

// verifyOracle enumerates every predicate on db and compares the result
// pairs against the oracle edge set.
func verifyOracle(t *testing.T, db *DB, want map[Triple]bool) {
	t.Helper()
	for p := 0; p < 4; p++ {
		pred := fmt.Sprintf("p%d", p)
		sols, err := db.Query("?x", pred, "?y")
		if err != nil {
			t.Fatalf("query %s: %v", pred, err)
		}
		got := map[string]bool{}
		for _, s := range sols {
			got[s.Subject+"\x00"+s.Object] = true
		}
		wantSet := map[string]bool{}
		for tr := range want {
			if tr.Predicate == pred {
				wantSet[tr.Subject+"\x00"+tr.Object] = true
			}
		}
		if len(got) != len(wantSet) {
			t.Fatalf("predicate %s: %d pairs, oracle has %d", pred, len(got), len(wantSet))
		}
		for k := range wantSet {
			if !got[k] {
				t.Fatalf("predicate %s: oracle pair %q missing from recovered index", pred, k)
			}
		}
	}
}

// runCrashTrial runs the workload on a fault-injected in-memory
// filesystem, kills writes after budget bytes (budget < 0: never),
// crash-cuts the unsynced tails, recovers and verifies. Returns the
// total bytes the workload wrote (the kill-point range for callers).
func runCrashTrial(t *testing.T, budget, seed int64) int64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed*7919 + 17))
	mem := wal.NewMemFS()
	ff := wal.NewFaultFS(mem)
	db, err := openDurable(durableCfg(), buildCrashSeed, ff)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db.SetCompactionThreshold(-1)
	if budget >= 0 {
		ff.SetWriteBudget(budget)
	}
	tr := &tracker{db: db, byVersion: map[uint64]crashOp{}}
	for _, o := range crashWorkload() {
		tr.apply(o) //nolint:errcheck // failures past the kill point are the point
	}
	written := ff.Written()
	db.CloseWAL() //nolint:errcheck // a killed log fails its final sync

	crashed := mem.Crash(rng)
	rdb, err := openDurable(durableCfg(), buildCrashSeed, crashed)
	if err != nil {
		t.Fatalf("budget %d: recovery: %v", budget, err)
	}
	defer rdb.CloseWAL()
	v := rdb.DataVersion()
	if v < tr.acked {
		t.Fatalf("budget %d: acked version %d lost, recovered only to %d", budget, tr.acked, v)
	}
	if v > tr.max {
		t.Fatalf("budget %d: recovered version %d beyond produced %d", budget, v, tr.max)
	}
	verifyOracle(t, rdb, oracleAt(tr.byVersion, v))
	return written
}

// TestDurableCrashRecoveryProperty is the crash-recovery property
// harness: a dry run sizes the kill-point range, then 110 trials each
// kill the process at a random byte offset (plus a random tear of the
// unsynced suffix) and verify zero acked loss and oracle equality.
func TestDurableCrashRecoveryProperty(t *testing.T) {
	total := runCrashTrial(t, -1, 0)
	if total <= 0 {
		t.Fatalf("dry run wrote %d bytes", total)
	}
	trials := 110
	if testing.Short() {
		trials = 12
	}
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		// A budget past the total exercises pure crash-tears (no kill).
		budget := 1 + rng.Int63n(total+total/8)
		runCrashTrial(t, budget, int64(i+1))
	}
}

// TestDurableRoundTrip: a clean close and reopen rebuilds the seed and
// replays the log, and the database stays writable until CloseWAL —
// after which Apply must fail rather than silently go non-durable.
func TestDurableRoundTrip(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := openDurable(durableCfg(), buildCrashSeed, mem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Apply([]Triple{{"a", "p0", "b"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Apply([]Triple{{"b", "p0", "c"}}, nil); err != nil {
		t.Fatal(err)
	}
	ws := db.WALStats()
	if !ws.Enabled || ws.Appended != 2 || ws.Fsyncs == 0 {
		t.Fatalf("wal stats = %+v", ws)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	db2, err := openDurable(durableCfg(), buildCrashSeed, mem)
	if err != nil {
		t.Fatal(err)
	}
	if v := db2.DataVersion(); v != 2 {
		t.Fatalf("recovered version = %d, want 2", v)
	}
	if ws := db2.WALStats(); ws.Replayed != 2 {
		t.Fatalf("replayed = %d, want 2", ws.Replayed)
	}
	sols, err := db2.Query("a", "p0/p0", "?y")
	if err != nil || len(sols) != 1 || sols[0].Object != "c" {
		t.Fatalf("recovered query = %v, %v", sols, err)
	}
	if _, err := db2.Apply([]Triple{{"c", "p0", "d"}}, nil); err != nil {
		t.Fatalf("apply after recovery: %v", err)
	}
	if err := db2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Apply([]Triple{{"d", "p0", "e"}}, nil); err == nil {
		t.Fatal("Apply after CloseWAL must fail, not drop durability")
	}
}

// TestDurableUnknownPredicateLeavesNoTrace: a rejected batch must not
// reach the log — recovery replays exactly the acknowledged stream.
func TestDurableUnknownPredicateLeavesNoTrace(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := openDurable(durableCfg(), buildCrashSeed, mem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Apply([]Triple{{"a", "nope", "b"}}, nil); !errors.Is(err, ErrUnknownPredicate) {
		t.Fatalf("err = %v", err)
	}
	if ws := db.WALStats(); ws.Appended != 0 {
		t.Fatalf("rejected batch reached the log: %+v", ws)
	}
	db.CloseWAL()
	db2, err := openDurable(durableCfg(), buildCrashSeed, mem)
	if err != nil || db2.DataVersion() != 0 {
		t.Fatalf("recovered version = %d, err %v", db2.DataVersion(), err)
	}
	db2.CloseWAL()
}

// TestDurableCheckpointAndTruncate: Flush checkpoints the rebuilt index
// and reopening starts from the checkpoint, replaying only the suffix.
func TestDurableCheckpointAndTruncate(t *testing.T) {
	mem := wal.NewMemFS()
	cfg := durableCfg()
	cfg.SegmentBytes = 256 // roll often so truncation can drop whole segments
	db, err := openDurable(cfg, buildCrashSeed, mem)
	if err != nil {
		t.Fatal(err)
	}
	db.SetCompactionThreshold(-1)
	tr := &tracker{db: db, byVersion: map[uint64]crashOp{}}
	ops := crashWorkload()
	for _, o := range ops[:12] { // includes the first flush
		if err := tr.apply(o); err != nil {
			t.Fatal(err)
		}
	}
	ws := db.WALStats()
	if ws.Checkpoints != 1 || ws.CheckpointErrors != 0 || ws.LastCheckpointVersion == 0 {
		t.Fatalf("wal stats after flush = %+v", ws)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	names, _ := mem.ReadDir(crashDir)
	ckpts := 0
	for _, n := range names {
		if strings.HasSuffix(n, ".rckp") {
			ckpts++
		}
	}
	if ckpts != 1 {
		t.Fatalf("checkpoint files = %d (%v), want 1", ckpts, names)
	}

	db2, err := openDurable(cfg, func() (*DB, error) {
		return nil, errors.New("recovery must start from the checkpoint")
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.CloseWAL()
	if v := db2.DataVersion(); v != tr.max {
		t.Fatalf("recovered version = %d, want %d", v, tr.max)
	}
	verifyOracle(t, db2, oracleAt(tr.byVersion, tr.max))
	// The truncated log replays strictly less than the full stream.
	if ws := db2.WALStats(); ws.Replayed >= int64(tr.max) {
		t.Fatalf("replayed %d records for %d versions: truncation did not happen", ws.Replayed, tr.max)
	}
}

var compactStages = []string{"base-selected", "rebuilt", "swapped", "checkpointed", "truncated"}

// TestDurableCompactionStageInterleave applies one update at every
// compaction stage boundary: updates racing the rebuild must land in
// the residual overlay and the post-checkpoint log, and all of them
// must survive a restart.
func TestDurableCompactionStageInterleave(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := openDurable(durableCfg(), buildCrashSeed, mem)
	if err != nil {
		t.Fatal(err)
	}
	db.SetCompactionThreshold(-1)
	tr := &tracker{db: db, byVersion: map[uint64]crashOp{}}
	for _, o := range crashWorkload()[:5] {
		if err := tr.apply(o); err != nil {
			t.Fatal(err)
		}
	}
	var fired []string
	compactStageHook = func(stage string) {
		fired = append(fired, stage)
		o := crashOp{adds: []Triple{{"s-" + stage, "p0", "o-" + stage}}}
		if err := tr.apply(o); err != nil {
			t.Errorf("apply at stage %s: %v", stage, err)
		}
	}
	defer func() { compactStageHook = nil }()
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	compactStageHook = nil
	if !reflect.DeepEqual(fired, compactStages) {
		t.Fatalf("stages fired = %v, want %v", fired, compactStages)
	}
	verifyOracle(t, db, oracleAt(tr.byVersion, db.DataVersion()))

	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	db2, err := openDurable(durableCfg(), buildCrashSeed, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.CloseWAL()
	if v := db2.DataVersion(); v != tr.max {
		t.Fatalf("recovered version = %d, want %d", v, tr.max)
	}
	verifyOracle(t, db2, oracleAt(tr.byVersion, tr.max))
}

// TestDurableCompactionStageCrash kills the process right after an
// acknowledged update at each stage boundary. Whatever stage the
// compaction died in — rebuilt ring discarded, checkpoint half-written,
// truncation skipped — recovery must preserve every acked batch.
func TestDurableCompactionStageCrash(t *testing.T) {
	for si, stage := range compactStages {
		t.Run(stage, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(77 + si)))
			mem := wal.NewMemFS()
			ff := wal.NewFaultFS(mem)
			db, err := openDurable(durableCfg(), buildCrashSeed, ff)
			if err != nil {
				t.Fatal(err)
			}
			db.SetCompactionThreshold(-1)
			tr := &tracker{db: db, byVersion: map[uint64]crashOp{}}
			for _, o := range crashWorkload()[:5] {
				if err := tr.apply(o); err != nil {
					t.Fatal(err)
				}
			}
			compactStageHook = func(s string) {
				if s != stage {
					return
				}
				// One more acknowledged update, then the process dies.
				o := crashOp{adds: []Triple{{"s-" + s, "p0", "o-" + s}}}
				if err := tr.apply(o); err != nil {
					t.Errorf("apply at stage %s: %v", s, err)
				}
				ff.SetWriteBudget(0)
			}
			defer func() { compactStageHook = nil }()
			db.Flush() //nolint:errcheck // the kill may fail later stages
			compactStageHook = nil

			crashed := mem.Crash(rng)
			rdb, err := openDurable(durableCfg(), buildCrashSeed, crashed)
			if err != nil {
				t.Fatalf("recovery after crash at %s: %v", stage, err)
			}
			defer rdb.CloseWAL()
			v := rdb.DataVersion()
			if v < tr.acked {
				t.Fatalf("crash at %s: acked version %d lost, recovered to %d", stage, tr.acked, v)
			}
			if v > tr.max {
				t.Fatalf("crash at %s: recovered version %d beyond produced %d", stage, v, tr.max)
			}
			verifyOracle(t, rdb, oracleAt(tr.byVersion, v))
		})
	}
}

// TestDurableTornTailTruncated mutilates the newest log segment
// directly: the torn record must be truncated — never panicked on, and
// never replayed half-applied.
func TestDurableTornTailTruncated(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := openDurable(durableCfg(), buildCrashSeed, mem)
	if err != nil {
		t.Fatal(err)
	}
	tr := &tracker{db: db, byVersion: map[uint64]crashOp{}}
	for i := 0; i < 5; i++ {
		if err := tr.apply(crashOp{adds: []Triple{{fmt.Sprintf("t%d", i), "p0", fmt.Sprintf("t%d", i+1)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	// Chop a few bytes off the newest non-empty segment: the last
	// record's CRC can no longer match.
	names, _ := mem.ReadDir(crashDir)
	var segs []string
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg") {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs)
	cut := ""
	for i := len(segs) - 1; i >= 0; i-- {
		path := crashDir + "/" + segs[i]
		if data, ok := mem.Bytes(path); ok && len(data) > 16+16 {
			mem.WriteFile(path, data[:len(data)-3])
			cut = segs[i]
			break
		}
	}
	if cut == "" {
		t.Fatalf("no segment to cut among %v", segs)
	}

	db2, err := openDurable(durableCfg(), buildCrashSeed, mem)
	if err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	defer db2.CloseWAL()
	ws := db2.WALStats()
	if ws.TornBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", ws)
	}
	if v := db2.DataVersion(); v != 4 {
		t.Fatalf("recovered version = %d, want 4 (last record torn)", v)
	}
	verifyOracle(t, db2, oracleAt(tr.byVersion, 4))
}

// TestDurableFsyncNever: the relaxed policy may lose a crash-window
// suffix but never recovers to an inconsistent state.
func TestDurableFsyncNever(t *testing.T) {
	cfg := durableCfg()
	cfg.Fsync = "never"
	rng := rand.New(rand.NewSource(5))
	mem := wal.NewMemFS()
	db, err := openDurable(cfg, buildCrashSeed, mem)
	if err != nil {
		t.Fatal(err)
	}
	tr := &tracker{db: db, byVersion: map[uint64]crashOp{}}
	for _, o := range crashWorkload()[:8] {
		if err := tr.apply(o); err != nil {
			t.Fatal(err)
		}
	}
	crashed := mem.Crash(rng)
	db2, err := openDurable(cfg, buildCrashSeed, crashed)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.CloseWAL()
	v := db2.DataVersion()
	if v > tr.max {
		t.Fatalf("recovered version %d beyond produced %d", v, tr.max)
	}
	verifyOracle(t, db2, oracleAt(tr.byVersion, v))
}

// TestDurableStandingRecovery: subscriptions (and their resume cursors)
// ride the log — a restart re-registers them and rebuilds their delta
// history, explicit unsubscribes stay gone, and resumes past the
// processed stream are rejected.
func TestDurableStandingRecovery(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := openDurable(durableCfg(), buildCrashSeed, mem)
	if err != nil {
		t.Fatal(err)
	}
	db.SetCompactionThreshold(-1)
	sub, err := db.Subscribe(SubscribeRequest{Expr: "p0"})
	if err != nil {
		t.Fatal(err)
	}
	start := sub.StartVersion()
	sub2, err := db.Subscribe(SubscribeRequest{Expr: "p1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Apply([]Triple{{"a", "p0", "b"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Apply([]Triple{{"b", "p0", "c"}}, nil); err != nil {
		t.Fatal(err)
	}
	db.SyncStanding()
	if !db.Unsubscribe(sub2.ID()) {
		t.Fatal("unsubscribe sub2")
	}
	sub.Detach()
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	db2, err := openDurable(durableCfg(), buildCrashSeed, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.CloseWAL()
	if _, err := db2.ResumeSubscription(sub2.ID(), 0); !errors.Is(err, ErrUnknownSubscription) {
		t.Fatalf("unsubscribed sub resumed after restart: %v", err)
	}
	if _, err := db2.ResumeSubscription(sub.ID(), 99); !errors.Is(err, ErrResumeFuture) {
		t.Fatalf("future resume: %v", err)
	}
	r, err := db2.ResumeSubscription(sub.ID(), start)
	if err != nil {
		t.Fatalf("resume from cursor %d: %v", start, err)
	}
	for want := uint64(1); want <= 2; want++ {
		d, ok, err := r.TryNext()
		if !ok || err != nil || d.Version != want {
			t.Fatalf("replayed delta = (%+v, %v, %v), want version %d", d, ok, err, want)
		}
		if len(d.Added) != 1 {
			t.Fatalf("delta %d added = %v", want, d.Added)
		}
	}
	// The stream continues past the restart.
	if _, err := db2.Apply([]Triple{{"c", "p0", "d"}}, nil); err != nil {
		t.Fatal(err)
	}
	db2.SyncStanding()
	d, ok, err := r.TryNext()
	if !ok || err != nil || d.Version != 3 {
		t.Fatalf("post-restart delta = (%+v, %v, %v)", d, ok, err)
	}
}

// TestDurableStandingCheckpointTable: once the log segments holding a
// subscription's registration are truncated away, the checkpoint's
// subscription table is what carries it across a restart.
func TestDurableStandingCheckpointTable(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := openDurable(durableCfg(), buildCrashSeed, mem)
	if err != nil {
		t.Fatal(err)
	}
	db.SetCompactionThreshold(-1)
	if _, err := db.Apply([]Triple{{"a", "p0", "b"}}, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := db.Subscribe(SubscribeRequest{Expr: "p0"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Apply([]Triple{{"b", "p0", "c"}}, nil); err != nil {
		t.Fatal(err)
	}
	// This compaction's base covers the sub record's version, so the
	// truncation drops the segment holding it: only the checkpoint's
	// table knows the subscription now.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.SyncStanding()
	sub.Detach()
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	db2, err := openDurable(durableCfg(), func() (*DB, error) {
		return nil, errors.New("must recover from checkpoint")
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.CloseWAL()
	cursor := db2.DataVersion()
	r, err := db2.ResumeSubscription(sub.ID(), cursor)
	if err != nil {
		t.Fatalf("resume checkpoint-carried sub: %v", err)
	}
	if _, err := db2.Apply([]Triple{{"c", "p0", "d"}}, nil); err != nil {
		t.Fatal(err)
	}
	db2.SyncStanding()
	d, ok, err := r.TryNext()
	if !ok || err != nil || len(d.Added) != 1 {
		t.Fatalf("delta after restart = (%+v, %v, %v)", d, ok, err)
	}
}
