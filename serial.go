package ringrpq

import (
	"fmt"
	"io"

	"ringrpq/internal/ring"
	"ringrpq/internal/serial"
	"ringrpq/internal/triples"
)

// File magics. A single-ring database starts with "rdb1"; a sharded
// database starts with "rdbs" followed by a container version (1), the
// combination referred to as the rdbs1 format. Both carry the same
// graph metadata; the payload is either one ring or a shard container.
// LoadDB dispatches on the magic, so the two formats are transparently
// interchangeable at load time.
const (
	fileMagic        = "rdb1"
	fileMagicSharded = "rdbs"
	shardedVersion   = 1
)

// Save writes the database (dictionaries + ring index, or the sharded
// rdbs1 container) to w in a compact binary format. Building the index
// once and reloading it with LoadDB skips the construction sorts on
// subsequent runs.
//
// The on-disk formats hold only the static index, so a dirty overlay
// is flushed (compacted into the ring) first: Save persists exactly
// the data the database currently serves. Updates applied concurrently
// with Save trigger another flush round before the snapshot is pinned,
// so every acknowledged Apply that happened-before Save's pin is in
// the file; under a continuous write stream Save keeps flushing until
// it catches a quiescent window.
func (db *DB) Save(w io.Writer) error {
	var snap *snapshot
	for {
		if !db.h.cur.Load().ov.Empty() {
			if err := db.Flush(); err != nil {
				return err
			}
		}
		// Pin under the update lock: no Apply can slip between the
		// emptiness check and the pin.
		db.h.mu.Lock()
		s := db.h.cur.Load()
		if s.ov.Empty() {
			s.refs.Add(1)
			snap = s
		}
		db.h.mu.Unlock()
		if snap != nil {
			break
		}
	}
	defer db.h.release(snap)
	sw := serial.NewWriter(w)
	if snap.set != nil {
		sw.Magic(fileMagicSharded)
		sw.Int(shardedVersion)
		db.g.EncodeMeta(sw)
		snap.set.Encode(sw)
		return sw.Flush()
	}
	sw.Magic(fileMagic)
	db.g.EncodeMeta(sw)
	snap.r.Encode(sw)
	return sw.Flush()
}

// LoadDB reads a database written by Save, accepting both the
// single-ring (rdb1) and sharded (rdbs1) formats. Corrupted or
// truncated input yields an error, never a panic.
func LoadDB(r io.Reader) (*DB, error) {
	sr := serial.NewReader(r)
	switch tag := sr.Tag(); tag {
	case fileMagic:
		return loadSingle(sr)
	case fileMagicSharded:
		return loadSharded(sr)
	default:
		if err := sr.Err(); err != nil {
			return nil, fmt.Errorf("ringrpq: load: %w", err)
		}
		return nil, fmt.Errorf("ringrpq: load: bad magic %q", tag)
	}
}

func loadSingle(sr *serial.Reader) (*DB, error) {
	g := triples.DecodeMeta(sr)
	if err := sr.Err(); err != nil {
		return nil, fmt.Errorf("ringrpq: load: %w", err)
	}
	rg, err := ring.Decode(sr)
	if err != nil {
		return nil, fmt.Errorf("ringrpq: load: %w", err)
	}
	if rg.NumNodes != g.NumNodes() || rg.NumPreds != g.NumCompletedPreds() {
		return nil, fmt.Errorf("ringrpq: load: ring/dictionary mismatch (%d/%d nodes, %d/%d preds)",
			rg.NumNodes, g.NumNodes(), rg.NumPreds, g.NumCompletedPreds())
	}
	return newDB(g, rg, nil, rg.Layout()), nil
}

func loadSharded(sr *serial.Reader) (*DB, error) {
	if v := sr.Int(); sr.Err() == nil && v != shardedVersion {
		return nil, fmt.Errorf("ringrpq: load: unsupported sharded container version %d", v)
	}
	g := triples.DecodeMeta(sr)
	if err := sr.Err(); err != nil {
		return nil, fmt.Errorf("ringrpq: load: %w", err)
	}
	set, err := ring.DecodeShardSet(sr)
	if err != nil {
		return nil, fmt.Errorf("ringrpq: load: %w", err)
	}
	if set.NumNodes != g.NumNodes() || set.NumPreds != g.NumCompletedPreds() {
		return nil, fmt.Errorf("ringrpq: load: shard set/dictionary mismatch (%d/%d nodes, %d/%d preds)",
			set.NumNodes, g.NumNodes(), set.NumPreds, g.NumCompletedPreds())
	}
	layout := ring.WaveletMatrix
	if set.K > 0 {
		layout = set.Shards[0].Layout()
	}
	return newDB(g, nil, set, layout), nil
}
