package ringrpq

import (
	"fmt"
	"io"

	"ringrpq/internal/core"
	"ringrpq/internal/query"
	"ringrpq/internal/ring"
	"ringrpq/internal/serial"
	"ringrpq/internal/triples"
)

// File magics. A single-ring database starts with "rdb1"; a sharded
// database starts with "rdbs" followed by a container version (1), the
// combination referred to as the rdbs1 format. Both carry the same
// graph metadata; the payload is either one ring or a shard container.
// LoadDB dispatches on the magic, so the two formats are transparently
// interchangeable at load time.
const (
	fileMagic        = "rdb1"
	fileMagicSharded = "rdbs"
	shardedVersion   = 1
)

// Save writes the database (dictionaries + ring index, or the sharded
// rdbs1 container) to w in a compact binary format. Building the index
// once and reloading it with LoadDB skips the construction sorts on
// subsequent runs.
func (db *DB) Save(w io.Writer) error {
	sw := serial.NewWriter(w)
	if db.set != nil {
		sw.Magic(fileMagicSharded)
		sw.Int(shardedVersion)
		db.g.EncodeMeta(sw)
		db.set.Encode(sw)
		return sw.Flush()
	}
	sw.Magic(fileMagic)
	db.g.EncodeMeta(sw)
	db.r.Encode(sw)
	return sw.Flush()
}

// LoadDB reads a database written by Save, accepting both the
// single-ring (rdb1) and sharded (rdbs1) formats. Corrupted or
// truncated input yields an error, never a panic.
func LoadDB(r io.Reader) (*DB, error) {
	sr := serial.NewReader(r)
	switch tag := sr.Tag(); tag {
	case fileMagic:
		return loadSingle(sr)
	case fileMagicSharded:
		return loadSharded(sr)
	default:
		if err := sr.Err(); err != nil {
			return nil, fmt.Errorf("ringrpq: load: %w", err)
		}
		return nil, fmt.Errorf("ringrpq: load: bad magic %q", tag)
	}
}

func loadSingle(sr *serial.Reader) (*DB, error) {
	g := triples.DecodeMeta(sr)
	if err := sr.Err(); err != nil {
		return nil, fmt.Errorf("ringrpq: load: %w", err)
	}
	rg, err := ring.Decode(sr)
	if err != nil {
		return nil, fmt.Errorf("ringrpq: load: %w", err)
	}
	if rg.NumNodes != g.NumNodes() || rg.NumPreds != g.NumCompletedPreds() {
		return nil, fmt.Errorf("ringrpq: load: ring/dictionary mismatch (%d/%d nodes, %d/%d preds)",
			rg.NumNodes, g.NumNodes(), rg.NumPreds, g.NumCompletedPreds())
	}
	db := &DB{g: g, r: rg, sel: query.NewSelCache()}
	db.engine = core.NewEngine(rg, db.predIDs())
	return db, nil
}

func loadSharded(sr *serial.Reader) (*DB, error) {
	if v := sr.Int(); sr.Err() == nil && v != shardedVersion {
		return nil, fmt.Errorf("ringrpq: load: unsupported sharded container version %d", v)
	}
	g := triples.DecodeMeta(sr)
	if err := sr.Err(); err != nil {
		return nil, fmt.Errorf("ringrpq: load: %w", err)
	}
	set, err := ring.DecodeShardSet(sr)
	if err != nil {
		return nil, fmt.Errorf("ringrpq: load: %w", err)
	}
	if set.NumNodes != g.NumNodes() || set.NumPreds != g.NumCompletedPreds() {
		return nil, fmt.Errorf("ringrpq: load: shard set/dictionary mismatch (%d/%d nodes, %d/%d preds)",
			set.NumNodes, g.NumNodes(), set.NumPreds, g.NumCompletedPreds())
	}
	db := &DB{g: g, set: set, sel: query.NewSelCache()}
	db.engine = core.NewShardedEngine(set, db.predIDs())
	return db, nil
}
