package ringrpq

import (
	"fmt"
	"io"

	"ringrpq/internal/core"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/serial"
	"ringrpq/internal/triples"
)

// fileMagic identifies a serialised database and its format version.
const fileMagic = "rdb1"

// Save writes the database (dictionaries + ring index) to w in a
// compact binary format. Building the index once and reloading it with
// LoadDB skips the construction sorts on subsequent runs.
func (db *DB) Save(w io.Writer) error {
	sw := serial.NewWriter(w)
	sw.Magic(fileMagic)
	db.g.EncodeMeta(sw)
	db.r.Encode(sw)
	return sw.Flush()
}

// LoadDB reads a database written by Save.
func LoadDB(r io.Reader) (*DB, error) {
	sr := serial.NewReader(r)
	sr.Magic(fileMagic)
	g := triples.DecodeMeta(sr)
	if err := sr.Err(); err != nil {
		return nil, fmt.Errorf("ringrpq: load: %w", err)
	}
	rg, err := ring.Decode(sr)
	if err != nil {
		return nil, fmt.Errorf("ringrpq: load: %w", err)
	}
	if rg.NumNodes != g.NumNodes() || rg.NumPreds != g.NumCompletedPreds() {
		return nil, fmt.Errorf("ringrpq: load: ring/dictionary mismatch (%d/%d nodes, %d/%d preds)",
			rg.NumNodes, g.NumNodes(), rg.NumPreds, g.NumCompletedPreds())
	}
	db := &DB{g: g, r: rg}
	db.engine = core.NewEngine(rg, func(s pathexpr.Sym) (uint32, bool) {
		return g.PredID(s.Name, s.Inverse)
	})
	return db, nil
}
