// Package ringrpq is a time- and space-efficient regular path query
// (RPQ) engine for labeled graphs, reproducing "Time- and Space-Efficient
// Regular Path Queries on Graphs" (Arroyuelo, Hogan, Navarro,
// Rojas-Ledesma; arXiv:2111.04556).
//
// The graph is stored as a ring — a Burrows-Wheeler-transform style
// succinct index of its triples represented with wavelet trees — in about
// twice the space of a packed triple table, and 2RPQs (regular path
// queries with inverses) are evaluated directly on it by a backward
// traversal of only the query-relevant part of the product graph, driven
// by a bit-parallel Glushkov automaton.
//
// Quickstart:
//
//	b := ringrpq.NewBuilder()
//	b.Add("Baquedano", "l1", "UCh")
//	b.Add("UCh", "l1", "LosHeroes")
//	db, err := b.Build()
//	...
//	sols, err := db.Query("Baquedano", "(l1|l2|l5)+", "?station")
//
// Endpoints starting with '?' are variables; anything else must name a
// node. Expressions support predicates, inverses (^p), concatenation
// (p1/p2), alternation (p1|p2), closures (p*, p+) and optionals (p?).
//
// Beyond single 2RPQs, multi-clause graph patterns mix triple patterns
// with RPQ clauses and are evaluated by a selectivity-planned Leapfrog
// Triejoin pipelined with bound-endpoint RPQ steps (the §6 extension):
//
//	vars, rows, err := db.Select(
//		"SELECT ?x ?y WHERE { ?x advisor/advisor* ?y . ?y country Q30 }")
//
// See QueryPattern, Select and the README's "Graph patterns" section.
//
// A DB's query methods share working arrays and must not be called
// concurrently. For concurrent serving, wrap the database in a Service
// — a worker pool over the shared immutable index with a
// canonicalising compiled-query cache, an LRU result cache, batch
// evaluation and per-request deadlines (see ExampleService):
//
//	svc := ringrpq.NewService(db, ringrpq.ServiceConfig{Workers: 8})
//	defer svc.Close()
//	sols, err := svc.Query(ctx, "Baquedano", "(l1|l2|l5)+", "?station")
//
// For parallel index construction and intra-query parallelism on
// closure-heavy workloads, the index can be partitioned into sub-rings
// with NewBuilderWithConfig(BuilderConfig{Shards: K}); queries, saving
// and loading are transparent to the layout (see the README's sharded
// mode section).
//
// The index also accepts live updates: Apply (or Begin/Commit) folds
// triples into an in-memory overlay that every query unions in
// transparently, and a background compactor rebuilds the ring and
// swaps the snapshot atomically — in-flight queries finish on the
// snapshot they started with (see Apply, Flush and the README's "Live
// updates" section).
//
// Command rpqd serves the same API over HTTP, including POST /update.
package ringrpq

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/obs"
	"ringrpq/internal/overlay"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/query"
	"ringrpq/internal/ring"
	"ringrpq/internal/service"
	"ringrpq/internal/standing"
	"ringrpq/internal/triples"
)

// Layout selects the wavelet representation of the ring's sequences.
type Layout = ring.Layout

// Wavelet layouts: the matrix is the paper's default; the tree is kept
// for comparison.
const (
	WaveletMatrix = ring.WaveletMatrix
	WaveletTree   = ring.WaveletTree
)

// BuilderConfig tunes index construction. The zero value builds the
// default single-ring index with the wavelet-matrix layout.
type BuilderConfig struct {
	// Layout selects the wavelet representation of the ring sequences.
	Layout Layout
	// Shards partitions the triples across this many sub-rings that are
	// built — and, for queries whose expressions span shards, traversed
	// — in parallel. 0 or 1 builds the classic single ring. Partitioning
	// is by hash of the base predicate, so a predicate and its inverse
	// always share a shard; see the README's sharded-mode section for
	// when sharding pays off. Values beyond the supported maximum are
	// clamped.
	Shards int
}

// Builder accumulates triples before indexing.
type Builder struct {
	b   *triples.Builder
	cfg BuilderConfig
}

// NewBuilder returns an empty builder using the default configuration.
func NewBuilder() *Builder {
	return NewBuilderWithConfig(BuilderConfig{})
}

// NewBuilderWithConfig returns an empty builder with the given
// configuration, e.g. NewBuilderWithConfig(BuilderConfig{Shards: 8}).
func NewBuilderWithConfig(cfg BuilderConfig) *Builder {
	return &Builder{b: triples.NewBuilder(), cfg: cfg}
}

// SetLayout selects the wavelet layout used by Build.
func (b *Builder) SetLayout(l Layout) { b.cfg.Layout = l }

// SetShards selects the shard count used by Build (see
// BuilderConfig.Shards).
func (b *Builder) SetShards(k int) { b.cfg.Shards = k }

// Add inserts the edge s --p--> o. Duplicate edges collapse.
func (b *Builder) Add(s, p, o string) { b.b.Add(s, p, o) }

// Load reads whitespace-separated "s p o" triples (optionally with
// <IRI> tokens, comments and N-Triples dots) from r.
func (b *Builder) Load(r io.Reader) error { return triples.Load(r, b.b) }

// Build completes the graph with inverse edges, constructs the ring
// index (sharded when configured), and returns a queryable database.
// The builder must not be used afterwards.
func (b *Builder) Build() (*DB, error) {
	g := b.b.Build()
	if g.Len() == 0 {
		return nil, errors.New("ringrpq: empty graph")
	}
	if b.cfg.Shards > 1 {
		set := ring.NewShardSet(g, b.cfg.Shards, nil, b.cfg.Layout)
		return newDB(g, nil, set, b.cfg.Layout), nil
	}
	r := ring.New(g, b.cfg.Layout)
	return newDB(g, r, nil, b.cfg.Layout), nil
}

// newDB assembles a DB around a freshly built or loaded static index.
func newDB(g *triples.Graph, r *ring.Ring, set *ring.ShardSet, layout Layout) *DB {
	return &DB{g: g, h: newHolder(r, set, layout, g.NumNodes()), sel: query.NewSelCache()}
}

// DB is an RPQ-queryable graph database. Its query methods share
// working arrays and must not be called concurrently; use Clone for
// parallel workers. (A sharded DB's single evaluation may itself fan
// out across its shards with internal goroutines; that is invisible to
// callers and does not relax the one-caller rule.)
//
// The index is no longer frozen after Build: Apply folds live updates
// into an in-memory overlay that every query unions in, and a
// background compactor periodically rebuilds the static ring and swaps
// the snapshot atomically (see Apply, Begin, Flush and the README's
// "Live updates" section). Updates are safe from any goroutine; each
// query evaluates against the one snapshot it pinned at entry.
type DB struct {
	g *triples.Graph
	// h publishes the current (static index, overlay) snapshot, shared
	// with every clone.
	h *holder

	// sel shares the planner's lazily built selectivity statistics
	// across clones.
	sel *query.SelCache

	// Per-clone evaluation state, rebuilt when the pinned snapshot's
	// epoch moves past it (one-caller rule applies).
	epoch    uint64
	haveEng  bool
	static   core.Evaluator
	union    *overlay.Engine
	pat      *query.Exec
	patEpoch uint64
}

// predIDs resolves predicate occurrences of query expressions against
// the graph dictionaries.
func (db *DB) predIDs() func(s pathexpr.Sym) (uint32, bool) {
	return func(s pathexpr.Sym) (uint32, bool) {
		return db.g.PredID(s.Name, s.Inverse)
	}
}

// Clone returns a DB sharing the index (and the live snapshot state:
// updates applied through any clone are visible to all) but with its
// own query working arrays, safe to use from another goroutine.
func (db *DB) Clone() *DB {
	return &DB{g: db.g, h: db.h, sel: db.sel}
}

// Shards reports the number of sub-rings the database is partitioned
// into (1 for the classic single-ring layout).
func (db *DB) Shards() int {
	return db.h.cur.Load().shards()
}

// evaluatorFor returns this clone's evaluator for the pinned snapshot:
// the plain static engine when the overlay is empty, the union engine
// otherwise. Engines are rebuilt when a compaction has swapped the
// snapshot since they were built.
func (db *DB) evaluatorFor(snap *snapshot) core.Evaluator {
	if !db.haveEng || db.epoch != snap.epoch {
		db.epoch = snap.epoch
		db.haveEng = true
		if snap.set != nil {
			db.static = core.NewShardedEngine(snap.set, db.predIDs())
		} else {
			db.static = core.NewEngine(snap.r, db.predIDs())
		}
		db.union = nil
	}
	if snap.ov.Empty() {
		return db.static
	}
	if db.union == nil {
		db.union = overlay.NewEngine(db.static, snap.rings(), db.predIDs(), db.g.NumCompletedPreds())
	}
	db.union.SetSnapshot(snap.ov, snap.numNodes)
	return db.union
}

// Solution is one result mapping of a query: Subject and Object name
// the path's endpoints.
type Solution = service.Solution

// QueryOption tunes one query.
type QueryOption func(*core.Options)

// WithLimit caps the number of solutions.
func WithLimit(n int) QueryOption {
	return func(o *core.Options) { o.Limit = n }
}

// WithTimeout bounds evaluation wall-clock time; exceeding it returns
// ErrTimeout along with the solutions found so far.
func WithTimeout(d time.Duration) QueryOption {
	return func(o *core.Options) { o.Timeout = d }
}

// ErrTimeout reports that a query exceeded its timeout.
var ErrTimeout = core.ErrTimeout

// ParseExpr validates a path expression, returning a descriptive error
// for malformed input.
func ParseExpr(expr string) error {
	_, err := pathexpr.Parse(expr)
	return err
}

// Query evaluates the 2RPQ (subject, expr, object) and returns all
// solutions. Endpoints beginning with '?' are variables; constant
// endpoint names that do not occur in the graph yield no solutions.
func (db *DB) Query(subject, expr, object string, opts ...QueryOption) ([]Solution, error) {
	var out []Solution
	err := db.QueryFunc(subject, expr, object, func(s Solution) bool {
		out = append(out, s)
		return true
	}, opts...)
	return out, err
}

// QueryFunc is Query with streaming delivery: emit receives each
// solution and may return false to stop early.
func (db *DB) QueryFunc(subject, expr, object string, emit func(Solution) bool, opts ...QueryOption) error {
	node, err := pathexpr.Parse(expr)
	if err != nil {
		return err
	}
	var options core.Options
	for _, opt := range opts {
		opt(&options)
	}
	return db.queryNode(context.Background(), subject, node, object, options, emit)
}

// queryNode is QueryFunc over a pre-parsed expression (the entry point
// used by Service workers, which share parsed ASTs across requests).
// ctx reaches the engine (core.FoldContext): it may carry an obs.Trace
// and tighten the evaluation deadline.
func (db *DB) queryNode(ctx context.Context, subject string, node pathexpr.Node, object string, options core.Options, emit func(Solution) bool) error {
	q := core.Query{Subject: core.Variable, Object: core.Variable, Expr: node}
	if !isVariable(subject) {
		id, ok := db.g.Nodes.Lookup(subject)
		if !ok {
			return nil
		}
		q.Subject = int64(id)
	}
	if !isVariable(object) {
		id, ok := db.g.Nodes.Lookup(object)
		if !ok {
			return nil
		}
		q.Object = int64(id)
	}
	snap := db.h.acquire()
	defer db.h.release(snap)
	_, err := db.evaluatorFor(snap).Eval(ctx, q, options, func(s, o uint32) bool {
		return emit(Solution{
			Subject: db.g.Nodes.Name(s),
			Object:  db.g.Nodes.Name(o),
		})
	})
	return err
}

// Count returns the number of solutions without materialising them.
func (db *DB) Count(subject, expr, object string, opts ...QueryOption) (int, error) {
	n := 0
	err := db.QueryFunc(subject, expr, object, func(Solution) bool {
		n++
		return true
	}, opts...)
	return n, err
}

func isVariable(endpoint string) bool {
	return strings.HasPrefix(endpoint, "?")
}

// Stats summarises the database.
type Stats struct {
	// Nodes is |V|.
	Nodes int
	// Edges is the original (pre-completion) edge count.
	Edges int
	// CompletedEdges counts edges after adding inverses (2·Edges).
	CompletedEdges int
	// Predicates is the original predicate count |P|.
	Predicates int
	// IndexBytes is the ring footprint used by queries.
	IndexBytes int
	// Shards is the sub-ring count (1 for the single-ring layout).
	Shards int
}

// indexN reports the completed triple count of the static index (the
// overlay's pending adds are not included; see UpdateStats).
func (db *DB) indexN() int {
	return db.h.cur.Load().indexN()
}

// indexQueryBytes reports the query-relevant index footprint.
func (db *DB) indexQueryBytes() int {
	return db.h.cur.Load().indexQueryBytes()
}

// Stats reports database statistics.
func (db *DB) Stats() Stats {
	// The index's N is used rather than the builder's triple list so the
	// counts survive Save/LoadDB (the triple list is not persisted).
	return Stats{
		Nodes:          db.g.NumNodes(),
		Edges:          db.indexN() / 2,
		CompletedEdges: db.indexN(),
		Predicates:     int(db.g.NumPreds),
		IndexBytes:     db.indexQueryBytes(),
		Shards:         db.Shards(),
	}
}

// BytesPerEdge reports the index's bytes per completed edge, the
// space measure of the paper's Table 2.
func (db *DB) BytesPerEdge() float64 {
	return float64(db.indexQueryBytes()) / float64(db.indexN())
}

// Nodes lists all node names (insertion order).
func (db *DB) Nodes() []string {
	out := make([]string, db.g.NumNodes())
	for i := range out {
		out[i] = db.g.Nodes.Name(uint32(i))
	}
	return out
}

// Predicates lists the original predicate names.
func (db *DB) Predicates() []string {
	out := make([]string, db.g.NumPreds)
	for i := range out {
		out[i] = db.g.Preds.Name(uint32(i))
	}
	return out
}

// String renders a brief description.
func (db *DB) String() string {
	s := db.Stats()
	return fmt.Sprintf("ringrpq.DB{%d nodes, %d edges, %d predicates, %.2f B/edge}",
		s.Nodes, s.Edges, s.Predicates, db.BytesPerEdge())
}

// ServiceConfig tunes a Service; the zero value picks sensible
// defaults (GOMAXPROCS workers, 4×workers queue depth, 1024-entry
// expression cache, 4096-entry / 64 MiB result cache). Negative cache
// sizes disable the corresponding cache.
type ServiceConfig = service.Config

// ServiceStats is a point-in-time snapshot of a Service's counters.
type ServiceStats = service.Stats

// Request is one query submission to a Service (used directly by
// Batch; Query/Count/QueryFunc build it from their arguments).
type Request = service.Request

// Result is the outcome of one batched Request.
type Result = service.Result

// ErrServiceClosed reports a submission to a Service after Close.
var ErrServiceClosed = service.ErrClosed

// Service is a concurrent query front-end over a DB: a fixed pool of
// workers (each with its own DB clone sharing the immutable index), a
// bounded request queue, a canonicalising compiled-query cache and an
// LRU result cache. All methods are safe for concurrent use; see
// NewService.
type Service struct {
	s  *service.Service
	db *DB
}

// NewService starts a query service over db. The db may still be used
// directly (single-threadedly) by the caller; workers evaluate on
// clones. Close the service to release its workers.
func NewService(db *DB, cfg ServiceConfig) *Service {
	return &Service{s: service.New(dbBackend{db}, cfg), db: db}
}

// dbBackend adapts a DB to the service worker interface.
type dbBackend struct {
	db *DB
}

func (b dbBackend) Clone() service.Backend {
	return dbBackend{db: b.db.Clone()}
}

func (b dbBackend) Eval(ctx context.Context, subject string, node pathexpr.Node, object string, limit int, timeout time.Duration, emit func(Solution) bool) error {
	o := core.Options{Limit: limit, Timeout: timeout}
	return b.db.queryNode(ctx, subject, node, object, o, emit)
}

// EvalPattern implements service.PatternBackend, so Services over a DB
// serve graph patterns (Select, POST /select).
func (b dbBackend) EvalPattern(ctx context.Context, q *query.Query, limit int, timeout time.Duration, emit func([]string) bool) error {
	o := core.Options{Limit: limit, Timeout: timeout, Trace: obs.FromContext(ctx)}
	return b.db.selectFunc(q, o, emit)
}

// EvalGroup implements service.GroupBackend: several 2RPQs evaluate
// over one pinned snapshot, and when the snapshot's evaluator is the
// plain single-ring engine their product-graph frontiers merge into one
// shared traversal (core.TraversalGroup). Sharded and overlaid
// snapshots evaluate the members solo under the same snapshot — still
// one acquire/release for the batch.
func (b dbBackend) EvalGroup(reqs []service.GroupRequest) []error {
	db := b.db
	errs := make([]error, len(reqs))
	snap := db.h.acquire()
	defer db.h.release(snap)
	ev := db.evaluatorFor(snap)

	gqs := make([]*core.GroupQuery, 0, len(reqs))
	idx := make([]int, 0, len(reqs))
	for i, req := range reqs {
		q := core.Query{Subject: core.Variable, Object: core.Variable, Expr: req.Expr}
		if !isVariable(req.Subject) {
			id, ok := db.g.Nodes.Lookup(req.Subject)
			if !ok {
				continue // unknown endpoint: no solutions, nil error
			}
			q.Subject = int64(id)
		}
		if !isVariable(req.Object) {
			id, ok := db.g.Nodes.Lookup(req.Object)
			if !ok {
				continue
			}
			q.Object = int64(id)
		}
		emit := req.Emit
		gqs = append(gqs, &core.GroupQuery{
			Query: q,
			Opts:  core.Options{Limit: req.Limit, Timeout: req.Timeout},
			Emit: func(s, o uint32) bool {
				return emit(Solution{
					Subject: db.g.Nodes.Name(s),
					Object:  db.g.Nodes.Name(o),
				})
			},
		})
		idx = append(idx, i)
	}
	if len(gqs) == 0 {
		return errs
	}
	if eng, ok := ev.(*core.Engine); ok {
		eng.EvalGroup(gqs)
	} else {
		for _, gq := range gqs {
			gq.Stats, gq.Err = ev.Eval(context.Background(), gq.Query, gq.Opts, gq.Emit)
		}
	}
	for k, gq := range gqs {
		errs[idx[k]] = gq.Err
	}
	return errs
}

// ApplyUpdates implements service.Updater: Services over a DB accept
// live updates (Update, POST /update). Safe for concurrent use — the
// batch goes to the shared snapshot holder, not through the pool.
func (b dbBackend) ApplyUpdates(ctx context.Context, adds, dels []service.UpdateTriple) (service.UpdateResult, error) {
	conv := func(ts []service.UpdateTriple) []Triple {
		out := make([]Triple, len(ts))
		for i, t := range ts {
			out[i] = Triple{Subject: t.S, Predicate: t.P, Object: t.O}
		}
		return out
	}
	st, err := b.db.ApplyContext(ctx, conv(adds), conv(dels))
	return service.UpdateResult{
		OverlayEdges: st.OverlayEdges,
		Tombstones:   st.Tombstones,
		Epoch:        st.Epoch,
		Version:      st.DataVersion,
		Compacting:   st.Compacting,
	}, err
}

// DataVersion implements service.Versioned: the result cache pins
// entries to the data version they were computed against, so updates
// and compaction swaps invalidate them in O(1).
func (b dbBackend) DataVersion() uint64 { return b.db.DataVersion() }

// Subscribe, ResumeSubscription, Unsubscribe and StandingStats
// implement service.StandingBackend: Services over a DB serve standing
// queries (Service.Subscribe, GET /subscribe). All four go to the
// shared registry, never through the worker pool.
func (b dbBackend) Subscribe(req standing.Request) (*standing.Sub, error) {
	return b.db.Subscribe(req)
}

func (b dbBackend) ResumeSubscription(id, from uint64) (*standing.Sub, error) {
	return b.db.ResumeSubscription(id, from)
}

func (b dbBackend) Unsubscribe(id uint64) bool { return b.db.Unsubscribe(id) }

func (b dbBackend) StandingStats() service.StandingStats {
	st := b.db.StandingStats()
	return service.StandingStats{
		Active:           st.Active,
		Detached:         st.Detached,
		Lagged:           st.Lagged,
		ReplayLogBatches: b.db.UpdateStats().ReplayBatches,
		Version:          st.Version,
		Batches:          st.Batches,
		Incremental:      st.Incremental,
		FullReevals:      st.FullReevals,
		Skipped:          st.Skipped,
		Deltas:           st.Deltas,
		Overflows:        st.Overflows,
	}
}

// WALStats implements service.WALStatser, so /stats reports the
// durability layer of an OpenDurable'd database.
func (b dbBackend) WALStats() service.WALStats {
	st := b.db.WALStats()
	return service.WALStats{
		Enabled:               st.Enabled,
		Dir:                   st.Dir,
		FsyncPolicy:           st.FsyncPolicy,
		Appended:              st.Appended,
		AppendedBytes:         st.AppendedBytes,
		Fsyncs:                st.Fsyncs,
		Replayed:              st.Replayed,
		TornBytes:             st.TornBytes,
		Segments:              st.Segments,
		SizeBytes:             st.SizeBytes,
		Checkpoints:           st.Checkpoints,
		CheckpointErrors:      st.CheckpointErrors,
		LastCheckpointVersion: st.LastCheckpointVersion,
		Wedged:                st.Wedged,
		WedgeReason:           st.WedgeReason,
	}
}

// request converts one public call into a service Request, folding
// WithLimit/WithTimeout options into the request parameters.
func request(subject, expr, object string, opts []QueryOption) Request {
	var options core.Options
	for _, opt := range opts {
		opt(&options)
	}
	return Request{
		Subject: subject, Expr: expr, Object: object,
		Limit: options.Limit, Timeout: options.Timeout,
	}
}

// Query evaluates one query through the pool, consulting the result
// cache first. The returned slice may be shared with the cache: treat
// it as read-only. The context bounds queueing and evaluation time
// (combined with WithTimeout and the service's default timeout).
func (s *Service) Query(ctx context.Context, subject, expr, object string, opts ...QueryOption) ([]Solution, error) {
	res := s.s.Query(ctx, request(subject, expr, object, opts))
	return res.Solutions, res.Err
}

// QueryFunc streams solutions to emit, which runs on a worker
// goroutine and may return false to stop early; it is never called
// after QueryFunc returns. Streamed queries bypass the result cache.
func (s *Service) QueryFunc(ctx context.Context, subject, expr, object string, emit func(Solution) bool, opts ...QueryOption) error {
	return s.s.QueryFunc(ctx, request(subject, expr, object, opts), emit)
}

// Count returns the number of solutions without materialising them.
func (s *Service) Count(ctx context.Context, subject, expr, object string, opts ...QueryOption) (int, error) {
	res := s.s.Count(ctx, request(subject, expr, object, opts))
	return res.N, res.Err
}

// Select evaluates a graph-pattern query through the pool (see
// DB.Select), consulting the result cache first. The returned slices
// may be shared with the cache: treat them as read-only.
func (s *Service) Select(ctx context.Context, pattern string, opts ...QueryOption) (vars []string, rows [][]string, err error) {
	o := options(opts)
	res := s.s.Select(ctx, service.Request{Pattern: pattern, Limit: o.Limit, Timeout: o.Timeout})
	return res.Vars, res.Rows, res.Err
}

// Batch evaluates requests concurrently across the pool, returning one
// Result per request in order. Individual failures (parse errors,
// timeouts) are reported per Result, not as a batch failure.
func (s *Service) Batch(ctx context.Context, reqs []Request) []Result {
	return s.s.Batch(ctx, reqs)
}

// Update atomically applies one live-update batch (adds then dels) to
// the underlying database (see DB.Apply). It does not occupy a worker:
// queries in flight finish on the snapshot they pinned, queries
// submitted afterwards see the update, and stale result-cache entries
// are never replayed.
func (s *Service) Update(ctx context.Context, adds, dels []Triple) (UpdateStats, error) {
	conv := func(ts []Triple) []service.UpdateTriple {
		out := make([]service.UpdateTriple, len(ts))
		for i, t := range ts {
			out[i] = service.UpdateTriple{S: t.Subject, P: t.Predicate, O: t.Object}
		}
		return out
	}
	_, err := s.s.Update(ctx, conv(adds), conv(dels))
	return s.db.UpdateStats(), err
}

// Subscribe registers a standing query through the service (see
// DB.Subscribe); Service.Close terminates it along with every other
// subscription registered this way, deterministically unblocking
// consumers.
func (s *Service) Subscribe(req SubscribeRequest) (*Subscription, error) {
	return s.s.Subscribe(req)
}

// ResumeSubscription reattaches to a subscription after a disconnect,
// replaying retained deltas newer than from (see
// DB.ResumeSubscription).
func (s *Service) ResumeSubscription(id, from uint64) (*Subscription, error) {
	return s.s.ResumeSubscription(id, from)
}

// Unsubscribe removes and terminates a subscription by id.
func (s *Service) Unsubscribe(id uint64) bool { return s.s.Unsubscribe(id) }

// Stats snapshots the service counters.
func (s *Service) Stats() ServiceStats { return s.s.Stats() }

// HandlerConfig tunes the HTTP handler returned by Service.Handler.
type HandlerConfig = service.HandlerConfig

// Handler returns an http.Handler exposing the service's JSON API:
// POST /query, POST /batch, GET /stats and GET /healthz (the API that
// cmd/rpqd serves).
func (s *Service) Handler(cfg HandlerConfig) http.Handler {
	return service.NewHandler(s.s, cfg)
}

// Close stops accepting requests, lets queued and running queries
// finish, and releases the workers. Close is idempotent.
func (s *Service) Close() error { return s.s.Close() }

// CloseSubscriptions terminates every standing-query subscription
// registered through this service — blocked consumers and streaming
// /subscribe handlers unblock with a terminal error — without
// stopping the worker pool. Call it at the start of a graceful HTTP
// shutdown, before http.Server.Shutdown: the long-lived subscription
// streams never go idle on their own, so they must end before the
// server can drain its connections. Idempotent; Close runs it too.
func (s *Service) CloseSubscriptions() { s.s.CloseSubscriptions() }
