// Benchmarks regenerating the paper's evaluation (§5). Each table and
// figure has a bench target; cmd/rpqbench prints the same numbers as
// formatted tables at configurable scale.
//
//	Table 1  → BenchmarkTable1Workload
//	Table 2  → BenchmarkTable2 (sub-benchmarks per system; space is
//	           reported as bytes/edge metrics)
//	Fig. 8   → BenchmarkFig8 (sub-benchmarks per pattern and system)
//	§5 index construction → BenchmarkRingConstruction
//	Design-choice ablations (§4/§6) → BenchmarkAblation*
package ringrpq

import (
	"context"
	"sync"
	"testing"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/datagen"
	"ringrpq/internal/glushkov"
	"ringrpq/internal/harness"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
	"ringrpq/internal/workload"
)

// The benchmark fixture: one synthetic Wikidata-shaped graph and query
// log shared by every bench, built lazily.
var bench struct {
	once    sync.Once
	g       *triples.Graph
	qs      []workload.Query
	ring    *harness.Ring
	ringWT  *harness.Ring
	bfs     *harness.BFS
	alp     *harness.ALP
	rel     *harness.Relational
	byPat   map[string][]workload.Query
	timeout time.Duration
	limit   int
}

func setup() {
	bench.once.Do(func() {
		bench.g = datagen.Generate(datagen.Config{
			Seed: 1, Nodes: 3000, Edges: 15000, Preds: 30,
		})
		bench.qs = workload.Generate(bench.g, workload.Config{Seed: 2, Total: 120})
		bench.ring = harness.NewRing(bench.g, ring.WaveletMatrix)
		bench.ringWT = harness.NewRing(bench.g, ring.WaveletTree)
		bench.bfs = harness.NewBFS(bench.g)
		bench.alp = harness.NewALP(bench.g)
		bench.rel = harness.NewRelational(bench.g)
		bench.byPat = map[string][]workload.Query{}
		for _, q := range bench.qs {
			p := workload.Classify(q)
			bench.byPat[p] = append(bench.byPat[p], q)
		}
		bench.timeout = 2 * time.Second
		bench.limit = 100000
	})
}

// BenchmarkTable1Workload measures query-log generation with the Table 1
// pattern mix (and exercises the classifier round trip).
func BenchmarkTable1Workload(b *testing.B) {
	setup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		qs := workload.Generate(bench.g, workload.Config{Seed: int64(i), Total: 100})
		if len(workload.CountPatterns(qs)) == 0 {
			b.Fatal("empty workload")
		}
	}
}

// runLog runs the whole query log once per iteration on one system —
// the per-query statistics of Table 2 derive from exactly this loop.
func runLog(b *testing.B, sys harness.System) {
	b.Helper()
	setup()
	edges := float64(bench.g.Len())
	b.ResetTimer()
	timeouts := 0
	for i := 0; i < b.N; i++ {
		q := bench.qs[i%len(bench.qs)]
		_, timedOut, err := sys.Run(q, bench.limit, bench.timeout)
		if err != nil {
			b.Fatal(err)
		}
		if timedOut {
			timeouts++
		}
	}
	b.ReportMetric(float64(sys.SizeBytes())/edges, "bytes/edge")
	b.ReportMetric(float64(timeouts), "timeouts")
}

// BenchmarkTable2 regenerates the query-time rows of Table 2.
func BenchmarkTable2(b *testing.B) {
	setup()
	b.Run("Ring", func(b *testing.B) { runLog(b, bench.ring) })
	b.Run("NavBFS", func(b *testing.B) { runLog(b, bench.bfs) })
	b.Run("ALP", func(b *testing.B) { runLog(b, bench.alp) })
	b.Run("Relational", func(b *testing.B) { runLog(b, bench.rel) })
}

// BenchmarkFig8 regenerates the per-pattern distributions of Fig. 8:
// one sub-benchmark per (pattern, system).
func BenchmarkFig8(b *testing.B) {
	setup()
	systems := []harness.System{bench.ring, bench.bfs, bench.alp, bench.rel}
	for _, pf := range workload.Table1 {
		qs := bench.byPat[pf.Pattern]
		if len(qs) == 0 {
			continue
		}
		b.Run(pf.Pattern, func(b *testing.B) {
			for _, sys := range systems {
				sys := sys
				b.Run(sys.Name(), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, _, err := sys.Run(qs[i%len(qs)], bench.limit, bench.timeout); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkRingConstruction measures index build time and size (§5:
// "Our index is constructed in 2.3 hours" at Wikidata scale).
func BenchmarkRingConstruction(b *testing.B) {
	setup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := ring.New(bench.g, ring.WaveletMatrix)
		if i == 0 {
			b.ReportMetric(float64(r.QuerySizeBytes())/float64(bench.g.Len()), "bytes/edge")
		}
	}
}

// --- Ablations -----------------------------------------------------------

func ringEngine() (*core.Engine, *triples.Graph) {
	setup()
	return bench.ring.Engine(), bench.g
}

// BenchmarkAblationLayout compares the wavelet matrix (paper choice)
// with the pointer-shaped wavelet tree on the same workload.
func BenchmarkAblationLayout(b *testing.B) {
	setup()
	for _, sys := range []harness.System{bench.ring, bench.ringWT} {
		sys := sys
		b.Run(sys.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.Run(bench.qs[i%len(bench.qs)], bench.limit, bench.timeout); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFastPaths measures the §5 join-like fast paths
// against the generic product-graph algorithm on the patterns they
// serve.
func BenchmarkAblationFastPaths(b *testing.B) {
	eng, _ := ringEngine()
	var joinish []workload.Query
	for _, q := range bench.qs {
		switch workload.Classify(q) {
		case "v / v", "v | v", "v || v", "v ^ v", "v /^ v":
			joinish = append(joinish, q)
		}
	}
	if len(joinish) == 0 {
		b.Skip("no join-like queries in the log sample")
	}
	run := func(b *testing.B, disable bool) {
		for i := 0; i < b.N; i++ {
			q := joinish[i%len(joinish)]
			_, err := eng.Eval(
				context.Background(),
				core.Query{Subject: core.Variable, Expr: q.Expr, Object: core.Variable},
				core.Options{Limit: bench.limit, Timeout: bench.timeout, DisableFastPaths: disable},
				func(uint32, uint32) bool { return true })
			if err != nil && err != core.ErrTimeout {
				b.Fatal(err)
			}
		}
	}
	b.Run("FastPaths", func(b *testing.B) { run(b, false) })
	b.Run("Generic", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationNodeMarks measures the per-wavelet-node visited-mask
// pruning of §4.2 against plain per-subject marks.
func BenchmarkAblationNodeMarks(b *testing.B) {
	eng, _ := ringEngine()
	var recursive []workload.Query
	for _, q := range bench.qs {
		if !q.ConstToVar() {
			recursive = append(recursive, q)
		}
	}
	if len(recursive) == 0 {
		b.Skip("no v-to-v queries in the log sample")
	}
	run := func(b *testing.B, disable bool) {
		for i := 0; i < b.N; i++ {
			q := recursive[i%len(recursive)]
			_, err := eng.Eval(
				context.Background(),
				core.Query{Subject: core.Variable, Expr: q.Expr, Object: core.Variable},
				core.Options{Limit: bench.limit, Timeout: bench.timeout,
					DisableFastPaths: true, DisableNodeMarks: disable},
				func(uint32, uint32) bool { return true })
			if err != nil && err != core.ErrTimeout {
				b.Fatal(err)
			}
		}
	}
	b.Run("NodeMarks", func(b *testing.B) { run(b, false) })
	b.Run("SubjectMarksOnly", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationTableSplit sweeps the d-bit vertical decomposition of
// the Glushkov transition tables (§3.3): space O((m/d)·2^d) vs step time
// O(m/d).
func BenchmarkAblationTableSplit(b *testing.B) {
	expr := pathexpr.MustParse("a/(b|c)*/(a|b)/c+/(a|c)*/b?")
	ids := func(s pathexpr.Sym) (uint32, bool) {
		return uint32(s.Name[0]-'a')*2 + b2u(s.Inverse), true
	}
	a := glushkov.Build(expr, ids)
	word := make([]uint32, 256)
	for i := range word {
		word[i] = uint32(i%3) * 2
	}
	for _, d := range []int{1, 2, 4, 8, 13} {
		d := d
		eng, err := glushkov.NewEngineSplit(a, d)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(splitName(d), func(b *testing.B) {
			b.ReportMetric(float64(eng.SizeBytes()), "table-bytes")
			for i := 0; i < b.N; i++ {
				eng.MatchRev(word)
			}
		})
	}
}

func splitName(d int) string { return "d=" + itoa(d) }

func b2u(x bool) uint32 {
	if x {
		return 1
	}
	return 0
}

// BenchmarkSelectivity measures the §6 colored-range distinct counting
// (distinct predicates into an object range in O(log n)).
func BenchmarkSelectivity(b *testing.B) {
	setup()
	r := ring.New(bench.g, ring.WaveletMatrix)
	sel := ring.NewSelectivity(r)
	nv := uint32(bench.g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo, hi := r.ObjectRange(uint32(i) % nv)
		sel.DistinctPreds(lo, hi)
	}
}
