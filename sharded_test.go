package ringrpq

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// buildRandom builds the same random graph into an unsharded and a
// K-sharded DB.
func buildRandom(t *testing.T, seed int64, nv, np, ne, shards int) (*DB, *DB) {
	t.Helper()
	single := NewBuilder()
	sharded := NewBuilderWithConfig(BuilderConfig{Shards: shards})
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ne; i++ {
		s := fmt.Sprintf("n%d", rng.Intn(nv))
		p := fmt.Sprintf("p%d", rng.Intn(np))
		o := fmt.Sprintf("n%d", rng.Intn(nv))
		single.Add(s, p, o)
		sharded.Add(s, p, o)
	}
	db1, err := single.Build()
	if err != nil {
		t.Fatal(err)
	}
	dbK, err := sharded.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db1, dbK
}

func sortedSolutions(t *testing.T, db *DB, subject, expr, object string) []Solution {
	t.Helper()
	sols, err := db.Query(subject, expr, object)
	if err != nil {
		t.Fatalf("Query(%s, %s, %s): %v", subject, expr, object, err)
	}
	sort.Slice(sols, func(i, j int) bool {
		if sols[i].Subject != sols[j].Subject {
			return sols[i].Subject < sols[j].Subject
		}
		return sols[i].Object < sols[j].Object
	})
	return sols
}

func sameSolutions(t *testing.T, label string, got, want []Solution) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d solutions, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: solution %d is %v, want %v", label, i, got[i], want[i])
		}
	}
}

var shardedExprs = []string{
	"p0", "^p1", "p0/p1", "p0|p1|p2", "(p0|p1)+", "p0*", "p0+/p2?", "(p0/^p1)+",
}

// TestShardedDBMatchesUnsharded compares the public Query/Count API of
// sharded and unsharded databases over the same random graphs.
func TestShardedDBMatchesUnsharded(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		db1, dbK := buildRandom(t, int64(k), 15, 4, 80, k)
		if got := dbK.Shards(); got != k {
			t.Fatalf("Shards() = %d, want %d", got, k)
		}
		for _, expr := range shardedExprs {
			for _, ep := range [][2]string{{"?s", "?o"}, {"n3", "?o"}, {"?s", "n7"}, {"n3", "n7"}, {"missing", "?o"}} {
				want := sortedSolutions(t, db1, ep[0], expr, ep[1])
				got := sortedSolutions(t, dbK, ep[0], expr, ep[1])
				sameSolutions(t, fmt.Sprintf("k=%d (%s, %s, %s)", k, ep[0], expr, ep[1]), got, want)

				n1, err := db1.Count(ep[0], expr, ep[1])
				if err != nil {
					t.Fatal(err)
				}
				nK, err := dbK.Count(ep[0], expr, ep[1])
				if err != nil {
					t.Fatal(err)
				}
				if n1 != nK {
					t.Fatalf("k=%d Count(%s, %s, %s) = %d, want %d", k, ep[0], expr, ep[1], nK, n1)
				}
			}
		}
	}
}

// TestShardedSaveLoad round-trips a sharded DB through the rdbs1
// container and checks the reloaded DB answers identically.
func TestShardedSaveLoad(t *testing.T) {
	db1, dbK := buildRandom(t, 99, 12, 3, 60, 4)
	var buf bytes.Buffer
	if err := dbK.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	if got := buf.Bytes()[:4]; string(got) != "rdbs" {
		t.Fatalf("sharded file magic %q, want %q", got, "rdbs")
	}
	loaded, err := LoadDB(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Shards() != 4 {
		t.Fatalf("loaded Shards() = %d, want 4", loaded.Shards())
	}
	if a, b := dbK.Stats(), loaded.Stats(); a != b {
		t.Fatalf("stats changed across save/load: %+v vs %+v", a, b)
	}
	for _, expr := range shardedExprs {
		want := sortedSolutions(t, db1, "?s", expr, "?o")
		got := sortedSolutions(t, loaded, "?s", expr, "?o")
		sameSolutions(t, "loaded "+expr, got, want)
	}

	// Truncations of the sharded container must error, never panic.
	raw := buf.Bytes()
	for i := 0; i < len(raw); i += 13 {
		if _, err := LoadDB(bytes.NewReader(raw[:i])); err == nil {
			t.Fatalf("LoadDB of %d-byte truncation succeeded", i)
		}
	}
}

// TestShardedService drives a sharded DB through the concurrent
// service front-end (worker-pool clones) and compares against direct
// single-threaded evaluation.
func TestShardedService(t *testing.T) {
	db1, dbK := buildRandom(t, 7, 14, 4, 90, 4)
	svc := NewService(dbK, ServiceConfig{Workers: 4})
	defer svc.Close()
	ctx := context.Background()
	for _, expr := range shardedExprs {
		want := sortedSolutions(t, db1, "?s", expr, "?o")
		got, err := svc.Query(ctx, "?s", expr, "?o")
		if err != nil {
			t.Fatalf("service query %s: %v", expr, err)
		}
		gs := append([]Solution(nil), got...)
		sort.Slice(gs, func(i, j int) bool {
			if gs[i].Subject != gs[j].Subject {
				return gs[i].Subject < gs[j].Subject
			}
			return gs[i].Object < gs[j].Object
		})
		sameSolutions(t, "service "+expr, gs, want)
	}
}

// TestShardedClone checks a cloned sharded DB evaluates independently.
func TestShardedClone(t *testing.T) {
	_, dbK := buildRandom(t, 21, 10, 3, 50, 3)
	clone := dbK.Clone()
	want := sortedSolutions(t, dbK, "?s", "(p0|p1)+", "?o")
	got := sortedSolutions(t, clone, "?s", "(p0|p1)+", "?o")
	sameSolutions(t, "clone", got, want)
	if clone.Shards() != dbK.Shards() {
		t.Fatalf("clone Shards() = %d, want %d", clone.Shards(), dbK.Shards())
	}
}

// TestShardedStats sanity-checks the aggregate statistics of a sharded
// DB against its unsharded twin.
func TestShardedStats(t *testing.T) {
	db1, dbK := buildRandom(t, 33, 10, 3, 40, 4)
	s1, sK := db1.Stats(), dbK.Stats()
	if sK.Shards != 4 || s1.Shards != 1 {
		t.Fatalf("Shards fields: sharded %d (want 4), single %d (want 1)", sK.Shards, s1.Shards)
	}
	if s1.Nodes != sK.Nodes || s1.Edges != sK.Edges || s1.CompletedEdges != sK.CompletedEdges || s1.Predicates != sK.Predicates {
		t.Fatalf("counts differ: single %+v, sharded %+v", s1, sK)
	}
	if sK.IndexBytes <= 0 || dbK.BytesPerEdge() <= 0 {
		t.Fatalf("sharded footprint not reported: %+v", sK)
	}
}
