package ringrpq

// This file is the snapshot layer of the live-update subsystem: the
// holder publishes immutable snapshots (static ring/shard set + one
// overlay version), Apply folds updates into a new snapshot, and the
// compactor rebuilds the static index from ring+overlay and swaps it
// in atomically. Queries pin the snapshot they start on (epoch +
// refcount), so an in-flight evaluation — including one on a service
// worker clone — is never torn by a concurrent Apply or swap.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ringrpq/internal/obs"
	"ringrpq/internal/overlay"
	"ringrpq/internal/ring"
	"ringrpq/internal/standing"
	"ringrpq/internal/triples"
)

// Triple is one update triple in string form (the form Builder.Add
// takes).
type Triple struct {
	Subject, Predicate, Object string
}

// ErrUnknownPredicate reports an added triple whose predicate was not
// part of the graph at build time. The completed predicate id space
// (p̂ = p + |P|) is frozen when the ring is built, so new predicates
// require a rebuild through a Builder; new *nodes* are fine and are
// interned on the fly.
var ErrUnknownPredicate = errors.New("ringrpq: unknown predicate in update (the predicate set is fixed at build time)")

// UpdateStats describes the live-update state of a database.
type UpdateStats struct {
	// OverlayEdges and Tombstones are the completed adds and deletes
	// pending in the overlay (2× the data edges).
	OverlayEdges, Tombstones int
	// Epoch counts atomic snapshot swaps (compactions); DataVersion
	// counts every visible data change (applies and swaps).
	Epoch, DataVersion uint64
	// Compactions is the number of completed compactions; Compacting
	// reports one in flight.
	Compactions int64
	Compacting  bool
	// LastCompaction is the wall time of the last rebuild (outside the
	// swap lock); LastSwapPause is the last swap's critical section —
	// the only window concurrent Applies wait on.
	LastCompaction, LastSwapPause time.Duration
	// PinnedSnapshots counts snapshots still referenced by in-flight
	// queries (including the current one).
	PinnedSnapshots int
	// ReplayBatches is the depth of the overlay's replay log: update
	// batches retained for compaction replay.
	ReplayBatches int
}

// snapshot is one immutable (static index, overlay) pair.
type snapshot struct {
	r   *ring.Ring     // single-ring layout (nil when sharded)
	set *ring.ShardSet // sharded layout (nil when single-ring)
	ov  *overlay.Overlay

	epoch    uint64
	version  uint64
	numNodes int // node dictionary length when published

	refs atomic.Int64
}

// rings lists the snapshot's sub-rings (one for the single layout).
func (s *snapshot) rings() []*ring.Ring {
	if s.set != nil {
		return s.set.Shards
	}
	return []*ring.Ring{s.r}
}

func (s *snapshot) indexN() int {
	if s.set != nil {
		return s.set.N
	}
	return s.r.N
}

func (s *snapshot) indexQueryBytes() int {
	if s.set != nil {
		return s.set.QuerySizeBytes()
	}
	return s.r.QuerySizeBytes()
}

func (s *snapshot) shards() int {
	if s.set != nil {
		return s.set.K
	}
	return 1
}

// inStatic reports membership of a completed edge in the static index.
func (s *snapshot) inStatic(e overlay.Edge) bool {
	if s.set != nil {
		return s.set.Shards[s.set.ShardFor(e.P)].Has(e.S, e.P, e.O)
	}
	return s.r.Has(e.S, e.P, e.O)
}

// holder is the mutable cell shared by a DB and all its clones.
type holder struct {
	mu  sync.Mutex // serialises Apply and the swap critical section
	cur atomic.Pointer[snapshot]

	compactMu  sync.Mutex // serialises whole compactions
	compacting atomic.Bool
	// compactBase is the data version of the in-flight compaction's
	// base snapshot, or -1 when none: the overlay's replay log only
	// needs batches newer than it (they are replayed onto the rebuilt
	// ring at swap time), so Apply prunes everything older.
	compactBase atomic.Int64

	layout    ring.Layout
	threshold atomic.Int64 // 0 = automatic, < 0 = disabled

	compactions   atomic.Int64
	lastRebuildNS atomic.Int64
	lastSwapNS    atomic.Int64

	// live tracks published-but-possibly-pinned snapshots for the
	// PinnedSnapshots stat; entries are pruned once unpinned.
	liveMu sync.Mutex
	live   []*snapshot

	// standing is the registry of standing-query subscriptions, created
	// lazily on the first Subscribe and shared by every clone. Apply and
	// the compaction swap notify it under h.mu, so notices arrive in
	// publication order with the batch's snapshots pinned.
	standingMu  sync.Mutex
	standing    atomic.Pointer[standing.Registry]
	standingCfg standing.Config

	// wal, when set (OpenDurable), is the durability sink: Apply appends
	// each batch under h.mu before publishing it, and the compactor
	// checkpoints and truncates the log.
	wal atomic.Pointer[walSink]
}

// compactStageHook, when set by a test, is called at compaction stage
// boundaries ("base-selected", "rebuilt", "swapped", "checkpointed",
// "truncated"). Every call site is outside h.mu, so a hook may apply
// updates to interleave them with the stages.
var compactStageHook func(stage string)

func stageHook(stage string) {
	if compactStageHook != nil {
		compactStageHook(stage)
	}
}

// newHolder publishes the initial snapshot.
func newHolder(r *ring.Ring, set *ring.ShardSet, layout ring.Layout, numNodes int) *holder {
	h := &holder{layout: layout}
	h.compactBase.Store(-1)
	s := &snapshot{r: r, set: set, ov: overlay.New(), numNodes: numNodes}
	h.cur.Store(s)
	h.live = []*snapshot{s}
	return h
}

// acquire pins the current snapshot for one evaluation.
func (h *holder) acquire() *snapshot {
	for {
		s := h.cur.Load()
		s.refs.Add(1)
		if h.cur.Load() == s {
			return s
		}
		// A swap raced the pin; retry on the new snapshot.
		s.refs.Add(-1)
	}
}

// release unpins a snapshot.
func (h *holder) release(s *snapshot) { s.refs.Add(-1) }

// publish swaps in a new snapshot; callers hold h.mu.
func (h *holder) publish(s *snapshot) {
	h.cur.Store(s)
	h.liveMu.Lock()
	kept := h.live[:0]
	for _, old := range h.live {
		if old.refs.Load() > 0 {
			kept = append(kept, old)
		}
	}
	h.live = append(kept, s)
	h.liveMu.Unlock()
}

func (h *holder) pinned() int {
	h.liveMu.Lock()
	defer h.liveMu.Unlock()
	n := 0
	for _, s := range h.live {
		if s.refs.Load() > 0 || s == h.cur.Load() {
			n++
		}
	}
	return n
}

// effectiveThreshold resolves the compaction trigger for a given
// static index size.
func (h *holder) effectiveThreshold(staticN int) int {
	t := h.threshold.Load()
	if t < 0 {
		return 0 // disabled
	}
	if t > 0 {
		return int(t)
	}
	auto := staticN / 4
	if auto < 1024 {
		auto = 1024
	}
	return auto
}

// SetCompactionThreshold tunes the background compactor: the overlay
// weight (completed adds + tombstones) that triggers a rebuild. 0
// restores the default (a quarter of the static triple count, at least
// 1024); a negative value disables automatic compaction (Flush still
// compacts on demand). Safe to call concurrently with queries and
// updates; shared with every clone.
func (db *DB) SetCompactionThreshold(n int) {
	db.h.threshold.Store(int64(n))
}

// UpdateStats snapshots the live-update counters.
func (db *DB) UpdateStats() UpdateStats {
	s := db.h.cur.Load()
	return UpdateStats{
		OverlayEdges:    s.ov.AddCount(),
		Tombstones:      s.ov.DelCount(),
		Epoch:           s.epoch,
		DataVersion:     s.version,
		Compactions:     db.h.compactions.Load(),
		Compacting:      db.h.compacting.Load(),
		LastCompaction:  time.Duration(db.h.lastRebuildNS.Load()),
		LastSwapPause:   time.Duration(db.h.lastSwapNS.Load()),
		PinnedSnapshots: db.h.pinned(),
		ReplayBatches:   s.ov.BatchCount(),
	}
}

// DataVersion reports the current data version: it advances on every
// Apply and every compaction swap. Result caches key their entries to
// it (see the service layer).
func (db *DB) DataVersion() uint64 { return db.h.cur.Load().version }

// predsOf validates added triples' predicates without touching the
// node dictionary: a rejected batch must leave no trace, and a batch
// must be known-valid before it is appended to the write-ahead log.
// Unknown predicates fail the whole batch (phantom nodes from a
// partially-resolved one would otherwise surface as spurious nullable
// self-pairs in later queries).
func (db *DB) predsOf(adds []Triple) ([]uint32, error) {
	preds := make([]uint32, len(adds))
	for i, t := range adds {
		p, ok := db.g.Preds.Lookup(t.Predicate)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownPredicate, t.Predicate)
		}
		preds[i] = p
	}
	return preds, nil
}

// internAdds interns and completes added triples whose predicates were
// validated by predsOf. Apply calls it under h.mu, after the batch's
// WAL append succeeded: interning order then matches batch-version
// order exactly, which is what makes recovery's replay re-assign the
// same dictionary ids (Dict.Intern numbers names by first appearance).
func (db *DB) internAdds(adds []Triple, preds []uint32) []overlay.Edge {
	np := db.g.NumPreds
	out := make([]overlay.Edge, 0, 2*len(adds))
	for i, t := range adds {
		p := preds[i]
		s := db.g.Nodes.Intern(t.Subject)
		o := db.g.Nodes.Intern(t.Object)
		out = append(out,
			overlay.Edge{S: s, P: p, O: o},
			overlay.Edge{S: o, P: p + np, O: s})
	}
	return out
}

// resolveDels completes deleted triples; names never seen are no-ops.
func (db *DB) resolveDels(dels []Triple) []overlay.Edge {
	np := db.g.NumPreds
	out := make([]overlay.Edge, 0, 2*len(dels))
	for _, t := range dels {
		p, ok := db.g.Preds.Lookup(t.Predicate)
		if !ok {
			continue
		}
		s, ok := db.g.Nodes.Lookup(t.Subject)
		if !ok {
			continue
		}
		o, ok := db.g.Nodes.Lookup(t.Object)
		if !ok {
			continue
		}
		out = append(out,
			overlay.Edge{S: s, P: p, O: o},
			overlay.Edge{S: o, P: p + np, O: s})
	}
	return out
}

// Apply atomically applies one update batch: adds then dels (within
// one batch a delete wins over an add of the same triple). New node
// names are interned; new predicate names are rejected with
// ErrUnknownPredicate (the completed id space is frozen at build
// time). Deletes of absent triples are no-ops.
//
// Queries running concurrently — directly on clones or through a
// Service — are unaffected: each evaluation pins the snapshot it
// started on and the update becomes visible to evaluations that start
// afterwards. Apply is safe to call from any goroutine and any clone;
// batches are serialised internally. When the overlay crosses the
// compaction threshold a background rebuild is kicked off (see
// SetCompactionThreshold and Flush).
func (db *DB) Apply(adds, dels []Triple) (UpdateStats, error) {
	return db.ApplyContext(context.Background(), adds, dels)
}

// ApplyContext is Apply with a context carrying an optional obs.Trace:
// profiled updates record wal_append, standing_notify and wal_fsync
// spans. The context does not cancel the apply (batches are atomic).
func (db *DB) ApplyContext(ctx context.Context, adds, dels []Triple) (UpdateStats, error) {
	tr := obs.FromContext(ctx)
	preds, err := db.predsOf(adds)
	if err != nil {
		return db.UpdateStats(), err
	}
	h := db.h
	// Encode the WAL record outside the lock; the triples are the
	// caller's and the encoding does not depend on holder state.
	var rec []byte
	if h.wal.Load() != nil {
		rec = encodeBatchRecord(adds, dels)
	}

	h.mu.Lock()
	cur := h.cur.Load()
	var lsn uint64
	sink := h.wal.Load()
	if sink != nil {
		if rec == nil {
			rec = encodeBatchRecord(adds, dels)
		}
		asp := tr.Begin(obs.SpanWALAppend)
		lsn, err = sink.log.Append(cur.version+1, rec)
		tr.EndVals(asp, int64(len(rec)))
		if err != nil {
			// Nothing interned, nothing published: the batch never
			// happened. The wedged log fails every later Apply too.
			h.mu.Unlock()
			return db.UpdateStats(), fmt.Errorf("ringrpq: wal append: %w", err)
		}
	}
	addEdges := db.internAdds(adds, preds)
	delEdges := db.resolveDels(dels)
	ov := cur.ov.Apply(cur.version+1, addEdges, delEdges, cur.inStatic)
	// Bound the replay log: batches are only ever replayed by a
	// compaction whose base predates them, and the only base that can
	// predate already-applied batches is the in-flight one.
	keepAfter := ^uint64(0)
	if base := h.compactBase.Load(); base >= 0 {
		keepAfter = uint64(base)
	}
	ov = ov.WithBatchesAfter(keepAfter)
	next := &snapshot{
		r: cur.r, set: cur.set, ov: ov,
		epoch:    cur.epoch,
		version:  cur.version + 1,
		numNodes: db.g.NumNodes(),
	}
	h.publish(next)
	// Standing queries see every batch in publication order: pin both
	// sides of the transition for the registry worker (released there).
	if reg := h.standing.Load(); reg != nil && reg.Active() {
		cur.refs.Add(1)
		next.refs.Add(1)
		nsp := tr.Begin(obs.SpanStandingNotify)
		reg.Notify(standing.Batch{
			Version: next.version,
			Adds:    addEdges, Dels: delEdges,
			Old: cur, New: next,
		})
		tr.End(nsp)
	}
	h.mu.Unlock()

	if sink != nil && sink.ackSync {
		// Ack-after-fsync: the batch is already visible in memory, but
		// the caller's acknowledgement waits for durability. On failure
		// the log is wedged, so every later Apply fails before
		// publishing — the in-memory suffix past the last durable batch
		// never grows beyond this one batch.
		fsp := tr.Begin(obs.SpanWALFsync)
		err := sink.log.Sync(lsn)
		tr.End(fsp)
		if err != nil {
			return db.UpdateStats(), fmt.Errorf("ringrpq: wal fsync: %w", err)
		}
	}

	if t := h.effectiveThreshold(next.indexN()); t > 0 && ov.Weight() >= t {
		if h.compacting.CompareAndSwap(false, true) {
			go func() {
				defer h.compacting.Store(false)
				db.compactNow()
			}()
		}
	}
	return db.UpdateStats(), nil
}

// Update accumulates one update batch for a DB (see DB.Begin).
type Update struct {
	db         *DB
	adds, dels []Triple
}

// Begin starts an update batch. Add/Del stage triples; Commit applies
// them atomically (one snapshot transition; queries see all of the
// batch or none of it).
func (db *DB) Begin() *Update { return &Update{db: db} }

// Add stages the edge s --p--> o.
func (u *Update) Add(s, p, o string) *Update {
	u.adds = append(u.adds, Triple{s, p, o})
	return u
}

// Del stages the removal of the edge s --p--> o.
func (u *Update) Del(s, p, o string) *Update {
	u.dels = append(u.dels, Triple{s, p, o})
	return u
}

// Commit applies the staged batch; the Update must not be reused.
func (u *Update) Commit() (UpdateStats, error) {
	return u.db.Apply(u.adds, u.dels)
}

// Flush synchronously compacts: it rebuilds the static index from
// ring+overlay, swaps the snapshot atomically, and returns once the
// swap is visible. A no-op when the overlay is empty. Concurrent
// queries are never blocked by the rebuild — only the pointer swap
// itself is serialised with Apply.
func (db *DB) Flush() error {
	db.compactNow()
	return nil
}

// compactNow runs one compaction cycle end to end.
func (db *DB) compactNow() {
	h := db.h
	h.compactMu.Lock()
	defer h.compactMu.Unlock()

	// Select the base under the holder lock so Apply's replay-log
	// pruning can never race past it, and advertise it until the swap.
	h.mu.Lock()
	base := h.cur.Load()
	h.compactBase.Store(int64(base.version))
	h.mu.Unlock()
	defer h.compactBase.Store(-1)
	if base.ov.Empty() {
		return
	}
	stageHook("base-selected")
	// Rebuild at the base snapshot's dictionary length, not the current
	// one: the checkpoint written below pairs this ring with exactly the
	// first numNodes dictionary entries, and every node the base's
	// overlay references is below it. Nodes interned by batches that
	// race the rebuild stay overlay-only until the next compaction.
	numNodes := base.numNodes
	t0 := time.Now()
	var newR *ring.Ring
	var newSet *ring.ShardSet
	if base.set != nil {
		newSet = rebuildShards(base, numNodes, h.layout)
	} else {
		newR = rebuildSingle(base, numNodes, h.layout)
	}
	h.lastRebuildNS.Store(time.Since(t0).Nanoseconds())
	stageHook("rebuilt")

	inNew := func(e overlay.Edge) bool {
		if newSet != nil {
			return newSet.Shards[newSet.ShardFor(e.P)].Has(e.S, e.P, e.O)
		}
		return newR.Has(e.S, e.P, e.O)
	}

	// Swap critical section: fold updates that raced the rebuild into a
	// residual overlay against the new ring, then publish. This is the
	// only pause concurrent Applies observe; queries never block (they
	// pin whatever snapshot is current when they start).
	t1 := time.Now()
	h.mu.Lock()
	latest := h.cur.Load()
	sink := h.wal.Load()
	if sink != nil {
		// The swap consumes a version; log it so recovery's replay stays
		// gapless. An append failure aborts the swap (the rebuilt ring is
		// discarded; memory and log stay consistent).
		if _, err := sink.log.Append(latest.version+1, encodeSwapRecord()); err != nil {
			h.mu.Unlock()
			return
		}
	}
	// The residual needs no replay log of its own: any future
	// compaction's base will already contain it consolidated.
	residual := overlay.Replay(latest.ov.BatchesAfter(base.ov.Version()), inNew).WithBatchesAfter(^uint64(0))
	next := &snapshot{
		r: newR, set: newSet, ov: residual,
		epoch:   latest.epoch + 1,
		version: latest.version + 1,
		// Batches between base and latest may have grown the dictionary
		// past the rebuilt ring; their edges live in the residual and the
		// union engine sizes itself by the snapshot's numNodes.
		numNodes: latest.numNodes,
	}
	h.publish(next)
	// A swap changes no data, but subscriptions must observe the version
	// advance (resume cursors line up with DataVersion).
	if reg := h.standing.Load(); reg != nil && reg.Active() {
		reg.Notify(standing.Batch{Version: next.version})
	}
	h.mu.Unlock()
	h.lastSwapNS.Store(time.Since(t1).Nanoseconds())
	h.compactions.Add(1)
	stageHook("swapped")

	// Old-ring selectivity statistics are garbage now; unchanged shards
	// (shared pointers) keep theirs.
	db.sel.Retain(next.rings())

	if sink != nil {
		// Checkpoint the rebuilt ring (all data ≤ base.version,
		// consolidated) and drop the log segments it fully covers. A
		// checkpoint failure is not fatal: the log still holds every
		// batch since the previous checkpoint, so recovery just replays
		// more.
		if err := db.writeCheckpoint(sink, newR, newSet, base.version, numNodes); err != nil {
			sink.checkpointErrs.Add(1)
			return
		}
		sink.checkpoints.Add(1)
		sink.lastCheckpoint.Store(base.version)
		stageHook("checkpointed")
		if err := sink.log.TruncateBefore(base.version); err != nil {
			// Segments the checkpoint covers survive to the next
			// compaction; recovery just replays more.
			sink.checkpointErrs.Add(1)
		}
		stageHook("truncated")
	}
}

// rebuildSingle merges ring+overlay into a fresh single ring.
func rebuildSingle(base *snapshot, numNodes int, layout ring.Layout) *ring.Ring {
	ts := base.r.Triples()
	merged := make([]triples.Triple, 0, len(ts)+base.ov.AddCount())
	for _, t := range ts {
		if !base.ov.Deleted(overlay.Edge{S: t.S, P: t.P, O: t.O}) {
			merged = append(merged, t)
		}
	}
	base.ov.EachAdd(func(e overlay.Edge) bool {
		merged = append(merged, triples.Triple{S: e.S, P: e.P, O: e.O})
		return true
	})
	return ring.FromTriples(merged, numNodes, base.r.NumPreds, layout)
}

// rebuildShards merges ring+overlay per shard, rebuilding only the
// sub-rings whose predicates the overlay touched and sharing the rest
// structurally — unless the node id space grew, which forces a full
// rebuild (every sub-ring's partition arrays are sized by it).
func rebuildShards(base *snapshot, numNodes int, layout ring.Layout) *ring.ShardSet {
	set := base.set
	grow := numNodes != set.NumNodes
	changed := make([]bool, set.K)
	for _, p := range base.ov.TouchedPreds() {
		changed[set.ShardFor(p)] = true
	}

	shards := make([]*ring.Ring, set.K)
	var wg sync.WaitGroup
	for i, old := range set.Shards {
		if !changed[i] && !grow {
			shards[i] = old
			continue
		}
		wg.Add(1)
		go func(i int, old *ring.Ring) {
			defer wg.Done()
			ts := old.Triples()
			merged := make([]triples.Triple, 0, len(ts))
			for _, t := range ts {
				if !base.ov.Deleted(overlay.Edge{S: t.S, P: t.P, O: t.O}) {
					merged = append(merged, t)
				}
			}
			base.ov.EachAdd(func(e overlay.Edge) bool {
				if set.ShardFor(e.P) == i {
					merged = append(merged, triples.Triple{S: e.S, P: e.P, O: e.O})
				}
				return true
			})
			shards[i] = ring.FromTriples(merged, numNodes, set.NumPreds, layout)
		}(i, old)
	}
	wg.Wait()
	return ring.ShardSetFrom(shards, set.Part, numNodes, set.NumPreds)
}
