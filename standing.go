package ringrpq

// This file is the public surface of the standing-query subsystem
// (internal/standing): clients register a path expression or graph
// pattern once and receive incremental deltas — new and retracted
// result pairs or rows, tagged with the data version that produced
// them — as update batches apply. The snapshot layer (update.go)
// notifies the shared registry under its publish lock, so deltas
// arrive in version order and a subscription's view is always the
// exact diff between consecutive snapshots.

import (
	"context"
	"fmt"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/standing"
)

// Subscription is one standing query's delta stream (see
// DB.Subscribe). Consume with Next/TryNext from one goroutine at a
// time; Close/Detach are safe from any goroutine.
type Subscription = standing.Sub

// SubscribeRequest registers one standing query: either a 2RPQ (Expr
// plus optional constant Subject/Object endpoints) or a graph pattern
// (Pattern). Snapshot asks for the current result set as the first
// delta.
type SubscribeRequest = standing.Request

// Delta is one incremental result change (see standing.Delta).
type Delta = standing.Delta

// Pair is one 2RPQ result pair of a Delta.
type Pair = standing.Pair

// StandingConfig tunes the subscription subsystem (see
// DB.SetStandingConfig and standing.Config).
type StandingConfig = standing.Config

// StandingCounters is a point-in-time snapshot of the subscription
// registry's counters.
type StandingCounters = standing.Stats

// Standing-query errors (see the standing package for semantics).
var (
	// ErrSubscriptionClosed reports a closed / unsubscribed / shut-down
	// subscription.
	ErrSubscriptionClosed = standing.ErrClosed
	// ErrSubscriberLagged reports an overflowed pending queue; resume
	// from the last seen version to catch up from history.
	ErrSubscriberLagged = standing.ErrLagged
	// ErrUnknownSubscription reports a resume/unsubscribe for an
	// unknown id.
	ErrUnknownSubscription = standing.ErrUnknownSubscription
	// ErrResumeTooOld reports a resume version older than the retained
	// delta history.
	ErrResumeTooOld = standing.ErrTooOld
	// ErrResumeFuture reports a resume version beyond the processed
	// stream.
	ErrResumeFuture = standing.ErrFutureVersion
)

// standingHost adapts a dedicated DB clone to the registry's
// evaluation surface. Evaluations run only on the registry's single
// worker goroutine (the clone's one-caller rule holds); the dictionary
// and snapshot-holder methods are concurrency-safe by construction.
type standingHost struct {
	db *DB
}

func (h standingHost) Acquire() (standing.Snapshot, uint64) {
	s := h.db.h.acquire()
	return s, s.version
}

func (h standingHost) Release(s standing.Snapshot) { h.db.h.release(s.(*snapshot)) }

func (h standingHost) NumNodes(s standing.Snapshot) int { return s.(*snapshot).numNodes }

func (h standingHost) EvalRPQ(s standing.Snapshot, q standing.RPQ, opts standing.EvalOptions, emit func(subj, obj uint32) bool) error {
	_, err := h.db.evaluatorFor(s.(*snapshot)).Eval(context.Background(), q, opts, emit)
	return err
}

func (h standingHost) EvalPattern(s standing.Snapshot, q *standing.PatternQuery, timeout time.Duration, emit func(row []string) bool) error {
	return h.db.selectFuncOn(s.(*snapshot), q, core.Options{Timeout: timeout}, emit)
}

func (h standingHost) NodeName(id uint32) string { return h.db.g.Nodes.Name(id) }

func (h standingHost) LookupNode(name string) (uint32, bool) { return h.db.g.Nodes.Lookup(name) }

func (h standingHost) SymbolIDs() standing.SymbolIDs { return h.db.predIDs() }

// PredSym maps a completed predicate id back to its expression symbol
// (the inverse of SymbolIDs; ids ≥ |P| are the inverse half).
func (h standingHost) PredSym(c uint32) standing.PredicateSym {
	np := h.db.g.NumPreds
	if c >= np {
		return pathexpr.Sym{Name: h.db.g.Preds.Name(c - np), Inverse: true}
	}
	return pathexpr.Sym{Name: h.db.g.Preds.Name(c)}
}

// registry returns the shared subscription registry, creating it (over
// a dedicated worker clone) on first use.
func (db *DB) registry() *standing.Registry {
	h := db.h
	if reg := h.standing.Load(); reg != nil {
		return reg
	}
	h.standingMu.Lock()
	defer h.standingMu.Unlock()
	if reg := h.standing.Load(); reg != nil {
		return reg
	}
	reg := standing.New(standingHost{db: db.Clone()}, h.standingCfg)
	// When the registry drops a subscription on its own (detach TTL,
	// failed evaluation), record the eviction so recovery does not
	// resurrect it. Set before Store publishes the registry.
	reg.OnEvict = func(id uint64) {
		if sink := h.wal.Load(); sink != nil {
			sink.appendUnsub(h.cur.Load().version, id)
		}
	}
	h.standing.Store(reg)
	return reg
}

// SetStandingConfig tunes the subscription subsystem. It takes effect
// when the registry is created — call it before the first Subscribe
// (an existing registry keeps its configuration).
func (db *DB) SetStandingConfig(cfg StandingConfig) {
	h := db.h
	h.standingMu.Lock()
	h.standingCfg = cfg
	h.standingMu.Unlock()
}

// Subscribe registers a standing query. It blocks until the initial
// result is materialised against a pinned snapshot, so the returned
// subscription's StartVersion is exact: every later change arrives as
// a Delta, in data-version order, with nothing lost between the
// baseline and the stream. Safe from any goroutine and any clone.
func (db *DB) Subscribe(req SubscribeRequest) (*Subscription, error) {
	sub, err := db.registry().Subscribe(req)
	if err != nil {
		return nil, err
	}
	// A durable database logs the registration so the subscription — and
	// its resume cursor — survives a restart (the record's key is the
	// subscription's start version; checkpoints carry the live table as
	// well, and recovery dedups by id).
	if sink := db.h.wal.Load(); sink != nil {
		if err := sink.appendSub(sub.StartVersion(), standing.SubRecord{ID: sub.ID(), Req: req}); err != nil {
			sub.Close()
			return nil, fmt.Errorf("ringrpq: wal subscribe append: %w", err)
		}
	}
	return sub, nil
}

// ResumeSubscription reattaches to a subscription after a disconnect
// (see Subscription.Detach), replaying every delta with a version
// greater than from out of the retained history. ErrResumeTooOld means
// the history no longer reaches back to from; ErrResumeFuture means
// from is beyond the processed stream.
func (db *DB) ResumeSubscription(id, from uint64) (*Subscription, error) {
	reg := db.h.standing.Load()
	if reg == nil {
		return nil, ErrUnknownSubscription
	}
	return reg.Resume(id, from)
}

// Unsubscribe removes and terminates a subscription by id, reporting
// whether it existed. On a durable database the removal is logged, so
// the subscription stays gone across restarts. (A Subscription.Close —
// e.g. a service shutting down its tracked streams — is deliberately
// not logged: a disconnected-but-not-unsubscribed client keeps its
// resume cursor across a restart.)
func (db *DB) Unsubscribe(id uint64) bool {
	reg := db.h.standing.Load()
	if reg == nil {
		return false
	}
	ok := reg.Unsubscribe(id)
	if ok {
		if sink := db.h.wal.Load(); sink != nil {
			sink.appendUnsub(db.h.cur.Load().version, id)
		}
	}
	return ok
}

// StandingStats snapshots the subscription registry's counters (zero
// if nothing ever subscribed).
func (db *DB) StandingStats() StandingCounters {
	reg := db.h.standing.Load()
	if reg == nil {
		return StandingCounters{}
	}
	return reg.Stats()
}

// SyncStanding blocks until every standing subscription has been
// notified of all previously applied batches, returning the processed
// data version. It is a barrier for tests and benchmarks that need
// deltas lined up with applied batches; normal consumers just read
// Next.
func (db *DB) SyncStanding() uint64 {
	reg := db.h.standing.Load()
	if reg == nil {
		return db.DataVersion()
	}
	return reg.Sync()
}
