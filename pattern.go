package ringrpq

// This file is the public surface of the graph-pattern subsystem
// (internal/query): SPARQL-ish multi-clause queries mixing triple
// patterns and RPQ clauses, planned by selectivity and executed by
// pipelining Leapfrog Triejoin with bound-endpoint RPQ evaluation —
// the §6 integration the paper sketches.

import (
	"sort"
	"strconv"

	"ringrpq/internal/core"
	"ringrpq/internal/ltj"
	"ringrpq/internal/query"
)

// Binding is one graph-pattern solution: variable name (without '?')
// to the bound node name — or, for predicate-position variables, the
// predicate name ('^'-prefixed for inverse edges).
type Binding = query.Binding

// ErrCrossShard reports a graph pattern whose clauses span several
// sub-rings of a sharded database; such joins are not yet supported
// (single-shard patterns are routed wholesale).
var ErrCrossShard = query.ErrCrossShard

// ErrUnsupportedOrder reports a basic graph pattern that admits no
// single-ring variable order (full generality needs the second,
// reversed ring of the SIGMOD'21 construction).
var ErrUnsupportedOrder = ltj.ErrUnsupportedOrder

// ParseQuery validates a graph-pattern query, returning a descriptive
// error for malformed input. The grammar, informally:
//
//	[SELECT ?v... WHERE {] clause ( . clause )* [}]
//	clause := term path term
//
// where a term is ?var, a bare node name or <name>, and path is a
// ?var predicate, a plain (possibly ^-inverted) predicate — a triple
// pattern — or any ringrpq path expression, an RPQ clause. Tokens are
// whitespace-separated; ".", "{" and "}" must stand alone.
func ParseQuery(q string) error {
	_, err := query.Parse(q)
	return err
}

// patternFor lazily builds the per-DB pattern executor for a pinned
// snapshot, rebuilding it after a compaction swap and pointing it at
// the snapshot's overlay so patterns see live updates. The selectivity
// statistics behind the planner are shared across clones via the
// SelCache created at construction time.
func (db *DB) patternFor(snap *snapshot) *query.Exec {
	if db.pat == nil || db.patEpoch != snap.epoch {
		if snap.set != nil {
			db.pat = query.NewExecSharded(db.g, snap.set, db.sel)
		} else {
			db.pat = query.NewExec(db.g, snap.r, db.sel)
		}
		db.patEpoch = snap.epoch
	}
	if snap.ov.Empty() {
		db.pat.SetOverlay(nil, 0)
	} else {
		db.pat.SetOverlay(snap.ov, snap.numNodes)
	}
	return db.pat
}

// QueryPattern evaluates a graph-pattern query and returns all
// bindings. Like the 2RPQ methods it must not be called concurrently
// on one DB; use Clone or a Service. Bindings are distinct;
// WithLimit/WithTimeout apply (a timeout returns ErrTimeout with the
// bindings found so far).
func (db *DB) QueryPattern(q string, opts ...QueryOption) ([]Binding, error) {
	var out []Binding
	err := db.QueryPatternFunc(q, func(b Binding) bool {
		out = append(out, b)
		return true
	}, opts...)
	return out, err
}

// QueryPatternFunc is QueryPattern with streaming delivery: emit
// receives each binding and may return false to stop early.
func (db *DB) QueryPatternFunc(q string, emit func(Binding) bool, opts ...QueryOption) error {
	node, err := query.Parse(q)
	if err != nil {
		return err
	}
	return db.queryPattern(node, options(opts), emit)
}

// queryPattern evaluates a pre-parsed pattern (the entry point used by
// Service workers, which share parsed patterns across requests).
func (db *DB) queryPattern(node *query.Query, o core.Options, emit func(Binding) bool) error {
	snap := db.h.acquire()
	defer db.h.release(snap)
	return db.queryPatternOn(snap, node, o, emit)
}

// queryPatternOn evaluates a pre-parsed pattern against an
// already-pinned snapshot (the standing-query host evaluates on a
// batch's two snapshots rather than whatever is current).
func (db *DB) queryPatternOn(snap *snapshot, node *query.Query, o core.Options, emit func(Binding) bool) error {
	return db.patternFor(snap).Run(node, query.Options{Limit: o.Limit, Timeout: o.Timeout, Trace: o.Trace}, emit)
}

// options folds QueryOptions into a core.Options value.
func options(opts []QueryOption) core.Options {
	var o core.Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Select evaluates a graph-pattern query and returns the projected
// result table: the variable names (the SELECT list when the query has
// one, every variable in order of first appearance otherwise) and one
// row of values per solution, distinct after projection.
func (db *DB) Select(q string, opts ...QueryOption) (vars []string, rows [][]string, err error) {
	node, err := query.Parse(q)
	if err != nil {
		return nil, nil, err
	}
	vars = node.OutVars()
	rows, err = db.selectRows(node, options(opts))
	return vars, rows, err
}

// selectFunc streams the projected, deduplicated rows of a pattern
// (values ordered by the query's OutVars). The limit caps distinct
// projected rows, so the underlying evaluation runs unlimited and
// stops once enough rows materialise; projection can identify
// distinct bindings, hence the dedup here.
func (db *DB) selectFunc(node *query.Query, o core.Options, emit func([]string) bool) error {
	snap := db.h.acquire()
	defer db.h.release(snap)
	return db.selectFuncOn(snap, node, o, emit)
}

// selectFuncOn is selectFunc against an already-pinned snapshot.
func (db *DB) selectFuncOn(snap *snapshot, node *query.Query, o core.Options, emit func([]string) bool) error {
	vars := node.OutVars()
	inner := o
	inner.Limit = 0
	// Without a SELECT list the projection is the identity, bindings
	// are already distinct by the executor's contract, and the dedup
	// map would only burn memory.
	var seen map[string]bool
	if node.Select != nil {
		seen = map[string]bool{}
	}
	emitted := 0
	return db.queryPatternOn(snap, node, inner, func(b Binding) bool {
		row := make([]string, len(vars))
		for i, v := range vars {
			row[i] = b[v]
		}
		if seen != nil {
			key := ""
			for _, v := range row {
				key += strconv.Itoa(len(v)) + ":" + v
			}
			if seen[key] {
				return true
			}
			seen[key] = true
		}
		emitted++
		if !emit(row) {
			return false
		}
		return o.Limit == 0 || emitted < o.Limit
	})
}

// selectRows materialises selectFunc's stream.
func (db *DB) selectRows(node *query.Query, o core.Options) ([][]string, error) {
	var rows [][]string
	err := db.selectFunc(node, o, func(row []string) bool {
		rows = append(rows, row)
		return true
	})
	return rows, err
}

// SortRows orders a Select result table lexicographically, for stable
// display and tests.
func SortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// ExplainPattern returns the planner's decisions for a pattern — the
// LTJ variable order and the scheduled RPQ steps — without executing
// it (debugging and tests).
func (db *DB) ExplainPattern(q string) (order []string, pathSteps int, err error) {
	node, err := query.Parse(q)
	if err != nil {
		return nil, 0, err
	}
	snap := db.h.acquire()
	defer db.h.release(snap)
	pl, err := db.patternFor(snap).Plan(node)
	if err != nil {
		return nil, 0, err
	}
	return pl.Order, len(pl.Steps), nil
}
