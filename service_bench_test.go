package ringrpq_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"ringrpq"
)

// benchServiceDB builds a mid-sized random graph; big enough that
// queries do real traversal work, small enough to build per benchmark
// binary run.
func benchServiceDB(b *testing.B) *ringrpq.DB {
	b.Helper()
	// Dense enough (≈20 edges/node) that closure queries traverse
	// sizable components: per-query work then dwarfs pool overhead.
	const (
		nodes = 1500
		edges = 30000
		preds = 8
	)
	rng := rand.New(rand.NewSource(42))
	bld := ringrpq.NewBuilder()
	for i := 0; i < edges; i++ {
		bld.Add(
			fmt.Sprintf("n%d", rng.Intn(nodes)),
			fmt.Sprintf("p%d", rng.Intn(preds)),
			fmt.Sprintf("n%d", rng.Intn(nodes)),
		)
	}
	db, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// benchRequests is a mixed workload of constant-endpoint queries over
// closures, alternations and inverses, weighted towards transitive
// closures so each query does real traversal work (hundreds of
// microseconds): throughput then measures evaluation, not queueing.
func benchRequests() []ringrpq.Request {
	exprs := []string{
		"(p0|p1)+",
		"p2*/p3*",
		"^p3/p4*",
		"(p0|^p1)+",
		"p5/(p6|p7)*",
		"(p2/p3)+",
	}
	var qs []ringrpq.Request
	for i, e := range exprs {
		for k := 0; k < 4; k++ {
			qs = append(qs, ringrpq.Request{Subject: fmt.Sprintf("n%d", (i*37+k*211)%1500), Expr: e, Object: "?o"})
			qs = append(qs, ringrpq.Request{Subject: "?s", Expr: e, Object: fmt.Sprintf("n%d", (i*53+k*97)%1500)})
		}
	}
	return qs
}

// BenchmarkServiceThroughput measures aggregate queries/sec through
// the pool at increasing worker counts with the result cache disabled,
// i.e. the pure scaling of concurrent evaluation over the shared
// immutable index. Scaling beyond 1× needs GOMAXPROCS ≥ workers (a
// multi-core box); client goroutines are provisioned at 2×workers so
// the pool stays saturated either way.
func BenchmarkServiceThroughput(b *testing.B) {
	db := benchServiceDB(b)
	qs := benchRequests()
	maxprocs := runtime.GOMAXPROCS(0)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			svc := ringrpq.NewService(db, ringrpq.ServiceConfig{
				Workers:            workers,
				QueueDepth:         4 * workers,
				ResultCacheEntries: -1,
				ResultCacheBytes:   -1,
			})
			defer svc.Close()
			ctx := context.Background()
			var next atomic.Int64
			b.SetParallelism((2*workers + maxprocs - 1) / maxprocs)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					q := qs[int(next.Add(1))%len(qs)]
					if _, err := svc.Count(ctx, q.Subject, q.Expr, q.Object); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// cacheBenchQuery is the query used by the cache-hit/cold pair: a
// constant-subject transitive closure whose result set (≤ |V| pairs)
// fits the cache comfortably while the cold evaluation still walks a
// sizable component.
var cacheBenchQuery = ringrpq.Request{Subject: "n42", Expr: "(p0|p1)+", Object: "?o"}

// BenchmarkServiceCacheHit measures the repeated-query path: after one
// cold evaluation, every request is served from the result cache.
// Compare with BenchmarkServiceCold for the same query.
func BenchmarkServiceCacheHit(b *testing.B) {
	db := benchServiceDB(b)
	svc := ringrpq.NewService(db, ringrpq.ServiceConfig{Workers: 2})
	defer svc.Close()
	ctx := context.Background()
	q := cacheBenchQuery
	if _, err := svc.Query(ctx, q.Subject, q.Expr, q.Object); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Query(ctx, q.Subject, q.Expr, q.Object); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceCold is the same query with caching disabled: every
// request pays the full evaluation.
func BenchmarkServiceCold(b *testing.B) {
	db := benchServiceDB(b)
	svc := ringrpq.NewService(db, ringrpq.ServiceConfig{
		Workers:            2,
		ResultCacheEntries: -1,
		ResultCacheBytes:   -1,
	})
	defer svc.Close()
	ctx := context.Background()
	q := cacheBenchQuery
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Query(ctx, q.Subject, q.Expr, q.Object); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceBatch measures batch fan-out of the full request mix
// across the pool.
func BenchmarkServiceBatch(b *testing.B) {
	db := benchServiceDB(b)
	qs := benchRequests()
	svc := ringrpq.NewService(db, ringrpq.ServiceConfig{
		Workers:            4,
		ResultCacheEntries: -1,
		ResultCacheBytes:   -1,
	})
	defer svc.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range svc.Batch(ctx, qs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
	b.ReportMetric(float64(b.N*len(qs))/b.Elapsed().Seconds(), "queries/sec")
}
